#include "nn/attention.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rpt {

namespace {

// Gathers `rows` of the leading axis of `t` into a new tensor whose dim 0 is
// rows.size(); repeats allowed. Inference-only: no autograd edge.
Tensor GatherAxis0(const Tensor& t, const std::vector<int64_t>& rows) {
  const int64_t old_batch = t.dim(0);
  std::vector<int64_t> shape = t.shape();
  shape[0] = static_cast<int64_t>(rows.size());
  const int64_t row_elems = old_batch > 0 ? t.numel() / old_batch : 0;
  Tensor out = Tensor::Zeros(shape);
  for (size_t i = 0; i < rows.size(); ++i) {
    RPT_CHECK_GE(rows[i], 0);
    RPT_CHECK_LT(rows[i], old_batch);
    const float* from = t.data() + rows[i] * row_elems;
    std::copy(from, from + row_elems,
              out.data() + static_cast<int64_t>(i) * row_elems);
  }
  return out;
}

}  // namespace

Tensor BuildAttentionBias(int64_t batch, int64_t heads, int64_t q_len,
                          int64_t k_len,
                          const std::vector<uint8_t>& key_valid,
                          bool causal) {
  constexpr float kNegInf = -1e9f;
  if (!key_valid.empty()) {
    RPT_CHECK_EQ(static_cast<int64_t>(key_valid.size()), batch * k_len);
  }
  if (causal) RPT_CHECK_EQ(q_len, k_len);
  Tensor bias = Tensor::Zeros({batch, heads, q_len, k_len});
  float* d = bias.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t i = 0; i < q_len; ++i) {
        float* row = d + ((b * heads + h) * q_len + i) * k_len;
        for (int64_t j = 0; j < k_len; ++j) {
          bool masked = false;
          if (causal && j > i) masked = true;
          if (!key_valid.empty() && key_valid[b * k_len + j] == 0) {
            masked = true;
          }
          if (masked) row[j] = kNegInf;
        }
      }
    }
  }
  return bias;
}

Tensor BuildIncrementalAttentionBias(int64_t batch, int64_t heads,
                                     int64_t k_len,
                                     const std::vector<uint8_t>& key_valid) {
  return BuildAttentionBias(batch, heads, /*q_len=*/1, k_len, key_valid,
                            /*causal=*/false);
}

void KVCache::GatherRows(const std::vector<int64_t>& rows) {
  if (empty()) return;
  k = GatherAxis0(k, rows);
  v = GatherAxis0(v, rows);
}

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t num_heads,
                                       float dropout, Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      q_proj_(d_model, d_model, rng),
      k_proj_(d_model, d_model, rng),
      v_proj_(d_model, d_model, rng),
      out_proj_(d_model, d_model, rng),
      attn_dropout_(dropout) {
  RPT_CHECK_EQ(head_dim_ * num_heads, d_model)
      << "d_model must be divisible by num_heads";
  RegisterModule("q_proj", &q_proj_);
  RegisterModule("k_proj", &k_proj_);
  RegisterModule("v_proj", &v_proj_);
  RegisterModule("out_proj", &out_proj_);
  RegisterModule("attn_dropout", &attn_dropout_);
}

Tensor MultiHeadAttention::SplitHeads(const Tensor& x, int64_t batch,
                                      int64_t t) const {
  Tensor reshaped = Reshape(x, {batch, t, num_heads_, head_dim_});
  return Transpose(reshaped, 1, 2);
}

void MultiHeadAttention::AppendKV(const Tensor& key, const Tensor& value,
                                  KVCache* cache) const {
  RPT_CHECK(cache != nullptr);
  const int64_t batch = key.dim(0);
  const int64_t t = key.dim(1);
  RPT_CHECK_EQ(key.dim(2), d_model_);
  RPT_CHECK_EQ(value.dim(1), t);
  Tensor k_new = SplitHeads(k_proj_.Forward(key), batch, t);
  Tensor v_new = SplitHeads(v_proj_.Forward(value), batch, t);
  if (cache->empty()) {
    cache->k = k_new;
    cache->v = v_new;
  } else {
    RPT_CHECK_EQ(cache->k.dim(0), batch);
    cache->k = Concat({cache->k, k_new}, 2);
    cache->v = Concat({cache->v, v_new}, 2);
  }
}

Tensor MultiHeadAttention::Forward(const Tensor& query, const Tensor& key,
                                   const Tensor& value, const Tensor& bias,
                                   Rng* rng, KVCache* cache) const {
  const int64_t batch = query.dim(0);
  const int64_t q_len = query.dim(1);
  RPT_CHECK_EQ(query.dim(2), d_model_);

  // Project and split heads: [B, T, D] -> [B, H, T, Dh].
  Tensor q = SplitHeads(q_proj_.Forward(query), batch, q_len);
  Tensor k, v;
  if (cache != nullptr) {
    if (key.defined()) AppendKV(key, value, cache);
    RPT_CHECK(!cache->empty()) << "attention cache holds no keys";
    RPT_CHECK_EQ(cache->k.dim(0), batch);
    k = cache->k;
    v = cache->v;
  } else {
    RPT_CHECK_EQ(key.dim(2), d_model_);
    RPT_CHECK_EQ(value.dim(1), key.dim(1));
    k = SplitHeads(k_proj_.Forward(key), batch, key.dim(1));
    v = SplitHeads(v_proj_.Forward(value), batch, key.dim(1));
  }

  // Scores: [B, H, Tq, Dh] x [B, H, Dh, Tk] -> [B, H, Tq, Tk].
  Tensor kt = Transpose(k, 2, 3);
  Tensor scores =
      Scale(MatMul(q, kt), 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (bias.defined()) {
    scores = Add(scores, bias);
  }
  Tensor attn = Softmax(scores);
  attn = attn_dropout_.Forward(attn, rng);

  // Context: [B, H, Tq, Tk] x [B, H, Tk, Dh] -> [B, H, Tq, Dh].
  Tensor context = MatMul(attn, v);
  // Merge heads: [B, H, Tq, Dh] -> [B, Tq, D].
  context = Transpose(context, 1, 2);
  context = Reshape(context, {batch, q_len, d_model_});
  return out_proj_.Forward(context);
}

}  // namespace rpt
