#include "nn/attention.h"

#include <cmath>

#include "util/logging.h"

namespace rpt {

Tensor BuildAttentionBias(int64_t batch, int64_t heads, int64_t q_len,
                          int64_t k_len,
                          const std::vector<uint8_t>& key_valid,
                          bool causal) {
  constexpr float kNegInf = -1e9f;
  if (!key_valid.empty()) {
    RPT_CHECK_EQ(static_cast<int64_t>(key_valid.size()), batch * k_len);
  }
  if (causal) RPT_CHECK_EQ(q_len, k_len);
  Tensor bias = Tensor::Zeros({batch, heads, q_len, k_len});
  float* d = bias.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t i = 0; i < q_len; ++i) {
        float* row = d + ((b * heads + h) * q_len + i) * k_len;
        for (int64_t j = 0; j < k_len; ++j) {
          bool masked = false;
          if (causal && j > i) masked = true;
          if (!key_valid.empty() && key_valid[b * k_len + j] == 0) {
            masked = true;
          }
          if (masked) row[j] = kNegInf;
        }
      }
    }
  }
  return bias;
}

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t num_heads,
                                       float dropout, Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      q_proj_(d_model, d_model, rng),
      k_proj_(d_model, d_model, rng),
      v_proj_(d_model, d_model, rng),
      out_proj_(d_model, d_model, rng),
      attn_dropout_(dropout) {
  RPT_CHECK_EQ(head_dim_ * num_heads, d_model)
      << "d_model must be divisible by num_heads";
  RegisterModule("q_proj", &q_proj_);
  RegisterModule("k_proj", &k_proj_);
  RegisterModule("v_proj", &v_proj_);
  RegisterModule("out_proj", &out_proj_);
  RegisterModule("attn_dropout", &attn_dropout_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query, const Tensor& key,
                                   const Tensor& value, const Tensor& bias,
                                   Rng* rng) const {
  const int64_t batch = query.dim(0);
  const int64_t q_len = query.dim(1);
  const int64_t k_len = key.dim(1);
  RPT_CHECK_EQ(query.dim(2), d_model_);
  RPT_CHECK_EQ(key.dim(2), d_model_);
  RPT_CHECK_EQ(value.dim(1), k_len);

  // Project and split heads: [B, T, D] -> [B, H, T, Dh].
  auto split_heads = [&](const Tensor& x, int64_t t) {
    Tensor reshaped = Reshape(x, {batch, t, num_heads_, head_dim_});
    return Transpose(reshaped, 1, 2);
  };
  Tensor q = split_heads(q_proj_.Forward(query), q_len);
  Tensor k = split_heads(k_proj_.Forward(key), k_len);
  Tensor v = split_heads(v_proj_.Forward(value), k_len);

  // Scores: [B, H, Tq, Dh] x [B, H, Dh, Tk] -> [B, H, Tq, Tk].
  Tensor kt = Transpose(k, 2, 3);
  Tensor scores =
      Scale(MatMul(q, kt), 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (bias.defined()) {
    scores = Add(scores, bias);
  }
  Tensor attn = Softmax(scores);
  attn = attn_dropout_.Forward(attn, rng);

  // Context: [B, H, Tq, Tk] x [B, H, Tk, Dh] -> [B, H, Tq, Dh].
  Tensor context = MatMul(attn, v);
  // Merge heads: [B, H, Tq, Dh] -> [B, Tq, D].
  context = Transpose(context, 1, 2);
  context = Reshape(context, {batch, q_len, d_model_});
  return out_proj_.Forward(context);
}

}  // namespace rpt
