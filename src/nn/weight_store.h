// WeightStore: one immutable weight blob shared by N model replicas.
//
// Freeze() snapshots a trained Module's NamedParameters() into a single
// 64-byte-aligned, refcounted blob with a name -> (offset, shape) index.
// Replicas then call Module::BindWeights(store), which rebinds each
// parameter tensor *in place* as a view into the blob (Tensor::BindTo), so
// adding a replica costs the module object and its activations only — not
// another copy of the parameters. The blob can also be saved to disk and
// mapped back read-only (MapFromFile), letting many processes share one
// physical copy via the page cache.
//
// The store additionally owns the int8 side of the backend seam: Quantized()
// lazily quantizes a 2-D entry per output channel (tensor/quant.h) exactly
// once, so every cpu-int8 replica of a route shares one quantized copy too.
//
// Blob layout: entries in NamedParameters() order, each payload aligned up
// to 64 bytes (16 floats) so SIMD kernels can assume aligned rows.
//
// File format (little-endian):
//   preamble  u32 magic 'RPTW', u32 version, u64 table_bytes,
//             u64 blob_start (bytes from file start, 64-aligned),
//             u64 blob_floats
//   table     u64 count, then per entry: string name, i64vec shape,
//             u64 offset_floats, u64 numel   (BinaryWriter encoding)
//   padding   zeros up to blob_start
//   blob      blob_floats * 4 bytes of raw fp32 payload

#ifndef RPT_NN_WEIGHT_STORE_H_
#define RPT_NN_WEIGHT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/quant.h"
#include "util/status.h"

namespace rpt {

class Module;

struct WeightEntry {
  std::string name;
  std::vector<int64_t> shape;
  size_t offset = 0;  // in floats from the blob base; 64-byte aligned
  size_t numel = 0;
};

class WeightStore {
 public:
  /// Snapshots `module`'s current parameter values into a new store.
  static std::shared_ptr<const WeightStore> Freeze(const Module& module);

  /// Maps a store previously written by SaveToFile. The blob is mapped
  /// read-only (mmap) when the platform allows it, falling back to a heap
  /// copy otherwise; either way the returned store is self-contained.
  static Result<std::shared_ptr<const WeightStore>> MapFromFile(
      const std::string& path);

  /// Writes the store (header + raw blob) to `path` via a temp file +
  /// atomic rename.
  Status SaveToFile(const std::string& path) const;

  /// nullptr when no entry has that dotted name.
  const WeightEntry* Find(const std::string& name) const;

  const float* DataFor(const WeightEntry& entry) const {
    return base_ + entry.offset;
  }

  /// Token that keeps the blob (and this store) alive; what parameter views
  /// hold as their storage anchor.
  std::shared_ptr<const void> KeepaliveFor(
      const std::shared_ptr<const WeightStore>& self) const {
    return std::shared_ptr<const void>(self, blob_.get());
  }

  const std::vector<WeightEntry>& entries() const { return entries_; }
  size_t total_floats() const { return total_floats_; }
  size_t blob_bytes() const { return total_floats_ * sizeof(float); }
  bool file_backed() const { return file_backed_; }

  /// Per-output-channel int8 quantization of the 2-D entry `name`, computed
  /// on first request and cached (thread-safe); every int8 replica shares
  /// the one copy. Returns nullptr when the entry is missing or not 2-D.
  /// The pointer lives as long as the store.
  const QuantizedMatrix* Quantized(const std::string& name) const;

  WeightStore(const WeightStore&) = delete;
  WeightStore& operator=(const WeightStore&) = delete;
  ~WeightStore() = default;

 private:
  WeightStore() = default;

  std::vector<WeightEntry> entries_;
  std::unordered_map<std::string, size_t> index_;
  const float* base_ = nullptr;
  size_t total_floats_ = 0;
  bool file_backed_ = false;
  // Heap buffer or mmap region; its deleter releases the memory.
  std::shared_ptr<const void> blob_;

  mutable std::mutex quant_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<QuantizedMatrix>>
      quant_;
};

}  // namespace rpt

#endif  // RPT_NN_WEIGHT_STORE_H_
