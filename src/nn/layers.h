// Basic trainable layers: Linear, Embedding, LayerNorm, Dropout.

#ifndef RPT_NN_LAYERS_H_
#define RPT_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rpt {

struct QuantizedMatrix;
class WeightStore;

/// y = x W + b over the last axis of x. Weight is stored as [in, out] so the
/// forward pass is a plain 2-D matmul.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  Tensor Forward(const Tensor& x) const;

  /// act(x W + b) through the fused GEMM epilogue. Under autograd this is
  /// the exact MatMul/Add/activation composition; in inference it is a
  /// single dispatched kernel call. When bound to a WeightStore with the
  /// cpu-int8 backend, untracked calls run the int8 weight-quantized GEMM
  /// instead (error bounded per output channel; see tensor/quant.h).
  Tensor ForwardAct(const Tensor& x, FusedAct act) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// True when ForwardAct will take the int8 path for untracked inputs.
  bool uses_int8() const { return qweight_ != nullptr; }

 protected:
  void OnWeightsBound(const WeightBindContext& ctx) override;

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out], undefined when bias=false
  // Set by OnWeightsBound under kCpuInt8: the store's shared per-channel
  // int8 copy of weight_ (the store shared_ptr keeps it alive).
  std::shared_ptr<const WeightStore> qstore_;
  const QuantizedMatrix* qweight_ = nullptr;
};

/// Trainable token-id -> vector table.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng);

  /// ids.size() rows of the table: [ids.size(), dim].
  Tensor Forward(const std::vector<int32_t>& ids) const;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }
  const Tensor& weight() const { return weight_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Tensor weight_;  // [num_embeddings, dim]
};

/// Learnable layer normalization over the last axis.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

/// Inverted dropout driven by the module train/eval flag.
class DropoutLayer : public Module {
 public:
  explicit DropoutLayer(float p) : p_(p) {}

  Tensor Forward(const Tensor& x, Rng* rng) const;

 private:
  float p_;
};

}  // namespace rpt

#endif  // RPT_NN_LAYERS_H_
