#include "nn/checkpoint.h"

#include <cstdio>

#include "util/serialize.h"

namespace rpt {

namespace {
constexpr uint32_t kMagic = 0x52505431;  // "RPT1"
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  module.SaveState(&writer);
  // Write-to-temp + rename so the target is replaced atomically (POSIX):
  // a crash mid-write leaves at worst a stale ".tmp" next to an intact
  // previous checkpoint, never a truncated checkpoint under the real name.
  const std::string tmp = path + ".tmp";
  Status written = writer.SaveToFile(tmp);
  if (!written.ok()) {
    std::remove(tmp.c_str());
    return written;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  auto magic = reader->ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return Status::InvalidArgument(path + " is not an RPT checkpoint");
  }
  auto version = reader->ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(*version));
  }
  Status loaded = module->LoadState(&*reader);
  if (!loaded.ok()) return loaded;
  // A valid state blob must consume the file exactly: trailing bytes mean
  // the file was corrupted or mid-write truncation aliased to an older
  // (shorter) architecture, and silently accepting it would mask that.
  if (!reader->AtEnd()) {
    return Status::InvalidArgument(
        path + " has trailing bytes after the checkpoint state blob");
  }
  return Status::Ok();
}

}  // namespace rpt
