// Model checkpoint files: magic + format version + named parameters.

#ifndef RPT_NN_CHECKPOINT_H_
#define RPT_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace rpt {

/// Writes the module's parameters to `path`.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Restores parameters from `path` into an identically structured module.
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace rpt

#endif  // RPT_NN_CHECKPOINT_H_
