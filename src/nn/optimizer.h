// Optimizers (SGD, Adam, AdamW), gradient clipping, and LR schedules.

#ifndef RPT_NN_OPTIMIZER_H_
#define RPT_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rpt {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently on the parameters.
  /// Parameters without an allocated gradient are skipped.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Tensor> params_;
  float learning_rate_ = 1e-3f;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). With weight_decay > 0 this is AdamW (decoupled
/// decay applied directly to the weights).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

/// Linear warmup followed by inverse-sqrt decay ("Noam" schedule, scaled so
/// the peak LR equals `peak_lr` at step == warmup_steps).
class WarmupSchedule {
 public:
  WarmupSchedule(float peak_lr, int64_t warmup_steps)
      : peak_lr_(peak_lr), warmup_steps_(warmup_steps) {}

  /// LR for a 1-based step counter.
  float LearningRate(int64_t step) const;

 private:
  float peak_lr_;
  int64_t warmup_steps_;
};

}  // namespace rpt

#endif  // RPT_NN_OPTIMIZER_H_
