// Module: base class for neural-network components.
//
// Concrete modules register their parameters and sub-modules in their
// constructor; the base class then provides recursive parameter collection
// (for optimizers and checkpointing), train/eval mode switching, and
// gradient zeroing.

#ifndef RPT_NN_MODULE_H_
#define RPT_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/backend.h"
#include "tensor/tensor.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rpt {

class WeightStore;

/// What OnWeightsBound sees: the store the module was just bound to, the
/// compute backend the owning replica will run, and this module's dotted
/// name prefix inside the store (e.g. "encoder.layers.0.fc1.").
struct WeightBindContext {
  const std::shared_ptr<const WeightStore>& store;
  ComputeBackend backend;
  const std::string& prefix;
};

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first.
  std::vector<Tensor> Parameters() const;

  /// (dotted-path name, parameter) pairs, depth-first; names are stable and
  /// used as checkpoint keys.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Zeroes allocated gradients on every parameter.
  void ZeroGrad();

  /// Switches train/eval mode recursively (affects dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Serializes all parameters (names + payloads) into `writer`.
  void SaveState(BinaryWriter* writer) const;

  /// Restores parameters from `reader`; fails if any name or shape differs.
  /// Refuses (kFailedPrecondition) when any parameter is a WeightStore view
  /// — shared blobs are immutable; load into an unbound module and re-freeze.
  Status LoadState(BinaryReader* reader);

  /// Rebinds every parameter (recursively) as a view into `store`'s shared
  /// blob; the previously owned buffers are freed, so N bound replicas hold
  /// one copy of the weights. Every parameter must exist in the store with
  /// a matching shape (kInvalidArgument otherwise; parameters bound before
  /// the failure stay bound). `backend` is recorded through OnWeightsBound —
  /// with kCpuInt8, Linear layers additionally pick up the store's shared
  /// int8 quantization of their weight. Binding puts the module in eval
  /// mode: bound parameters cannot require grad.
  Status BindWeights(const std::shared_ptr<const WeightStore>& store,
                     ComputeBackend backend = ComputeBackend::kAuto);

 protected:
  Module() = default;

  /// Registers a trainable parameter; marks it requires_grad.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  /// Registers a child module (non-owning; the child must outlive `this`,
  /// which holds in practice because children are data members).
  void RegisterModule(const std::string& name, Module* child);

  /// Hook invoked after this module's own parameters (not yet its
  /// children's) were rebound by BindWeights. Layers that keep derived
  /// state — e.g. Linear's int8 weights under kCpuInt8 — refresh it here.
  virtual void OnWeightsBound(const WeightBindContext& ctx) { (void)ctx; }

 private:
  Status BindWeightsImpl(const std::string& prefix,
                         const std::shared_ptr<const WeightStore>& store,
                         ComputeBackend backend);
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace rpt

#endif  // RPT_NN_MODULE_H_
