// Module: base class for neural-network components.
//
// Concrete modules register their parameters and sub-modules in their
// constructor; the base class then provides recursive parameter collection
// (for optimizers and checkpointing), train/eval mode switching, and
// gradient zeroing.

#ifndef RPT_NN_MODULE_H_
#define RPT_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rpt {

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first.
  std::vector<Tensor> Parameters() const;

  /// (dotted-path name, parameter) pairs, depth-first; names are stable and
  /// used as checkpoint keys.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Zeroes allocated gradients on every parameter.
  void ZeroGrad();

  /// Switches train/eval mode recursively (affects dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Serializes all parameters (names + payloads) into `writer`.
  void SaveState(BinaryWriter* writer) const;

  /// Restores parameters from `reader`; fails if any name or shape differs.
  Status LoadState(BinaryReader* reader);

 protected:
  Module() = default;

  /// Registers a trainable parameter; marks it requires_grad.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  /// Registers a child module (non-owning; the child must outlive `this`,
  /// which holds in practice because children are data members).
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace rpt

#endif  // RPT_NN_MODULE_H_
