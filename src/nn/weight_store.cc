#include "nn/weight_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define RPT_WEIGHT_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "nn/module.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace rpt {

namespace {

constexpr uint32_t kMagic = 0x52505457;  // "RPTW"
constexpr uint32_t kVersion = 1;
constexpr size_t kAlignBytes = 64;
constexpr size_t kAlignFloats = kAlignBytes / sizeof(float);
constexpr size_t kPreambleBytes = 4 + 4 + 8 + 8 + 8;

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

std::shared_ptr<float> AllocateAligned(size_t floats) {
  void* p = ::operator new(std::max<size_t>(floats, 1) * sizeof(float),
                           std::align_val_t(kAlignBytes));
  return std::shared_ptr<float>(static_cast<float*>(p), [](float* q) {
    ::operator delete(q, std::align_val_t(kAlignBytes));
  });
}

#ifdef RPT_WEIGHT_STORE_HAS_MMAP
// Owns one read-only mapping of a whole store file.
struct MmapRegion {
  void* addr = nullptr;
  size_t len = 0;
  ~MmapRegion() {
    if (addr != nullptr) ::munmap(addr, len);
  }
};
#endif

int64_t EntryNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) return -1;
    n *= d;
  }
  return n;
}

}  // namespace

std::shared_ptr<const WeightStore> WeightStore::Freeze(const Module& module) {
  auto named = module.NamedParameters();
  auto store = std::shared_ptr<WeightStore>(new WeightStore());

  size_t cursor = 0;
  store->entries_.reserve(named.size());
  for (const auto& [name, tensor] : named) {
    WeightEntry entry;
    entry.name = name;
    entry.shape = tensor.shape();
    entry.numel = static_cast<size_t>(tensor.numel());
    entry.offset = cursor;
    cursor = AlignUp(cursor + entry.numel, kAlignFloats);
    store->index_.emplace(name, store->entries_.size());
    store->entries_.push_back(std::move(entry));
  }
  store->total_floats_ = cursor;

  auto blob = AllocateAligned(cursor);
  std::memset(blob.get(), 0, cursor * sizeof(float));
  for (size_t i = 0; i < named.size(); ++i) {
    std::memcpy(blob.get() + store->entries_[i].offset, named[i].second.data(),
                store->entries_[i].numel * sizeof(float));
  }
  store->base_ = blob.get();
  store->blob_ = std::move(blob);
  return store;
}

Status WeightStore::SaveToFile(const std::string& path) const {
  BinaryWriter table;
  table.WriteU64(entries_.size());
  for (const auto& entry : entries_) {
    table.WriteString(entry.name);
    table.WriteI64Vector(entry.shape);
    table.WriteU64(entry.offset);
    table.WriteU64(entry.numel);
  }
  const size_t table_bytes = table.bytes().size();
  const size_t blob_start = AlignUp(kPreambleBytes + table_bytes, kAlignBytes);

  BinaryWriter preamble;
  preamble.Reserve(kPreambleBytes);
  preamble.WriteU32(kMagic);
  preamble.WriteU32(kVersion);
  preamble.WriteU64(table_bytes);
  preamble.WriteU64(blob_start);
  preamble.WriteU64(total_floats_);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(preamble.bytes().data()),
              static_cast<std::streamsize>(preamble.bytes().size()));
    out.write(reinterpret_cast<const char*>(table.bytes().data()),
              static_cast<std::streamsize>(table_bytes));
    const std::string pad(blob_start - kPreambleBytes - table_bytes, '\0');
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    out.write(reinterpret_cast<const char*>(base_),
              static_cast<std::streamsize>(total_floats_ * sizeof(float)));
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Result<std::shared_ptr<const WeightStore>> WeightStore::MapFromFile(
    const std::string& path) {
  // Header (preamble + table) is read through a stream; only the blob is
  // mapped, so parsing never touches more than the table pages.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> preamble_bytes(kPreambleBytes);
  in.read(reinterpret_cast<char*>(preamble_bytes.data()),
          static_cast<std::streamsize>(kPreambleBytes));
  if (!in) return Status::InvalidArgument(path + ": truncated preamble");
  BinaryReader preamble(std::move(preamble_bytes));
  const uint32_t magic = *preamble.ReadU32();
  const uint32_t version = *preamble.ReadU32();
  const uint64_t table_bytes = *preamble.ReadU64();
  const uint64_t blob_start = *preamble.ReadU64();
  const uint64_t blob_floats = *preamble.ReadU64();
  if (magic != kMagic) {
    return Status::InvalidArgument(path + ": not a weight store (bad magic)");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported weight store version " +
                                   std::to_string(version));
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (blob_start % kAlignBytes != 0 ||
      blob_start < kPreambleBytes + table_bytes ||
      blob_start + blob_floats * sizeof(float) != file_size) {
    return Status::InvalidArgument(path + ": corrupt weight store geometry");
  }

  std::vector<uint8_t> table_buf(table_bytes);
  in.seekg(static_cast<std::streamoff>(kPreambleBytes));
  in.read(reinterpret_cast<char*>(table_buf.data()),
          static_cast<std::streamsize>(table_bytes));
  if (!in) return Status::InvalidArgument(path + ": truncated entry table");
  BinaryReader table(std::move(table_buf));
  auto count = table.ReadU64();
  if (!count.ok()) return count.status();

  auto store = std::shared_ptr<WeightStore>(new WeightStore());
  store->entries_.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = table.ReadString();
    if (!name.ok()) return name.status();
    auto shape = table.ReadI64Vector();
    if (!shape.ok()) return shape.status();
    auto offset = table.ReadU64();
    if (!offset.ok()) return offset.status();
    auto numel = table.ReadU64();
    if (!numel.ok()) return numel.status();
    if (EntryNumel(*shape) != static_cast<int64_t>(*numel) ||
        *offset + *numel > blob_floats) {
      return Status::InvalidArgument(path + ": corrupt entry " + *name);
    }
    WeightEntry entry;
    entry.name = *name;
    entry.shape = std::move(*shape);
    entry.offset = *offset;
    entry.numel = *numel;
    store->index_.emplace(entry.name, store->entries_.size());
    store->entries_.push_back(std::move(entry));
  }
  if (!table.AtEnd()) {
    return Status::InvalidArgument(path + ": trailing bytes in entry table");
  }
  store->total_floats_ = blob_floats;

#ifdef RPT_WEIGHT_STORE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    void* addr =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    if (addr != MAP_FAILED) {
      auto region = std::make_shared<MmapRegion>();
      region->addr = addr;
      region->len = file_size;
      store->base_ = reinterpret_cast<const float*>(
          static_cast<const uint8_t*>(addr) + blob_start);
      store->blob_ = std::move(region);
      store->file_backed_ = true;
      return std::shared_ptr<const WeightStore>(store);
    }
  }
#endif
  // Fallback: copy the blob onto the heap.
  auto blob = AllocateAligned(blob_floats);
  in.seekg(static_cast<std::streamoff>(blob_start));
  in.read(reinterpret_cast<char*>(blob.get()),
          static_cast<std::streamsize>(blob_floats * sizeof(float)));
  if (!in) return Status::InvalidArgument(path + ": truncated blob");
  store->base_ = blob.get();
  store->blob_ = std::move(blob);
  return std::shared_ptr<const WeightStore>(store);
}

const WeightEntry* WeightStore::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

const QuantizedMatrix* WeightStore::Quantized(const std::string& name) const {
  const WeightEntry* entry = Find(name);
  if (entry == nullptr || entry->shape.size() != 2) return nullptr;
  std::lock_guard<std::mutex> lock(quant_mu_);
  auto it = quant_.find(name);
  if (it == quant_.end()) {
    auto q = std::make_unique<QuantizedMatrix>(QuantizePerChannel(
        DataFor(*entry), entry->shape[0], entry->shape[1]));
    it = quant_.emplace(name, std::move(q)).first;
  }
  return it->second.get();
}

}  // namespace rpt
