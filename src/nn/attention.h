// Multi-head scaled-dot-product attention (Vaswani et al., 2017).

#ifndef RPT_NN_ATTENTION_H_
#define RPT_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rpt {

/// Builds an additive attention bias of shape [batch, heads, q_len, k_len]:
/// 0 where attention is allowed and -1e9 where it is masked.
///
/// `key_valid` flags valid (non-pad) key positions, length batch*k_len (an
/// empty vector means every key is valid). When `causal`, position i may
/// additionally only attend to keys j <= i (requires q_len == k_len).
Tensor BuildAttentionBias(int64_t batch, int64_t heads, int64_t q_len,
                          int64_t k_len,
                          const std::vector<uint8_t>& key_valid,
                          bool causal);

/// Standard multi-head attention. Query/key/value projections, per-head
/// scaled dot-product with an additive bias, then an output projection.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t d_model, int64_t num_heads, float dropout,
                     Rng* rng);

  /// query [B, Tq, D], key/value [B, Tk, D], bias [B, H, Tq, Tk] (may be
  /// undefined for no masking). Returns [B, Tq, D].
  Tensor Forward(const Tensor& query, const Tensor& key, const Tensor& value,
                 const Tensor& bias, Rng* rng) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  DropoutLayer attn_dropout_;
};

}  // namespace rpt

#endif  // RPT_NN_ATTENTION_H_
