// Multi-head scaled-dot-product attention (Vaswani et al., 2017).

#ifndef RPT_NN_ATTENTION_H_
#define RPT_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rpt {

/// Builds an additive attention bias of shape [batch, heads, q_len, k_len]:
/// 0 where attention is allowed and -1e9 where it is masked.
///
/// `key_valid` flags valid (non-pad) key positions, length batch*k_len (an
/// empty vector means every key is valid). When `causal`, position i may
/// additionally only attend to keys j <= i (requires q_len == k_len).
Tensor BuildAttentionBias(int64_t batch, int64_t heads, int64_t q_len,
                          int64_t k_len,
                          const std::vector<uint8_t>& key_valid,
                          bool causal);

/// Incremental-decode variant: the bias for a single query row (the newest
/// decoder position) against `k_len` cached keys, shape
/// [batch, heads, 1, k_len]. The newest position may attend to every cached
/// key, so no causal term is needed — only `key_valid` padding is masked.
Tensor BuildIncrementalAttentionBias(int64_t batch, int64_t heads,
                                     int64_t k_len,
                                     const std::vector<uint8_t>& key_valid);

/// Cached key/value projections in split-head layout [B, H, T, Dh].
///
/// Two usage modes (both inference-only, no autograd):
///   * append-mode (decoder self-attention): AppendKV adds one step's K/V
///     along the time axis each decode step;
///   * compute-once (decoder cross-attention): AppendKV is called a single
///     time over the encoder memory, then reused every step.
struct KVCache {
  Tensor k;
  Tensor v;

  bool empty() const { return !k.defined(); }
  /// Number of cached key/value time steps.
  int64_t length() const { return k.defined() ? k.dim(2) : 0; }

  /// Reorders/compacts/replicates the batch axis: row i of the result is
  /// old row rows[i]. Repeats are allowed (beam replication); dropping
  /// indices compacts finished rows out.
  void GatherRows(const std::vector<int64_t>& rows);
};

/// Standard multi-head attention. Query/key/value projections, per-head
/// scaled dot-product with an additive bias, then an output projection.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t d_model, int64_t num_heads, float dropout,
                     Rng* rng);

  /// query [B, Tq, D], key/value [B, Tk, D], bias [B, H, Tq, Tk] (may be
  /// undefined for no masking). Returns [B, Tq, D].
  ///
  /// With a `cache`, attention runs against the cached keys/values instead
  /// of projecting `key`/`value` in full: when `key` is defined it is
  /// projected and appended to the cache first (incremental self-attention
  /// over new tokens); when `key` is undefined the cache is used as-is
  /// (cross-attention whose K/V were precomputed with AppendKV). `bias`
  /// must then be [B, H, Tq, cache_len] or undefined.
  Tensor Forward(const Tensor& query, const Tensor& key, const Tensor& value,
                 const Tensor& bias, Rng* rng,
                 KVCache* cache = nullptr) const;

  /// Projects `key`/`value` ([B, T, D]) and appends them to `cache` along
  /// the time axis (initializing it when empty). Inference-only.
  void AppendKV(const Tensor& key, const Tensor& value, KVCache* cache) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  /// [B, T, D] -> [B, H, T, Dh].
  Tensor SplitHeads(const Tensor& x, int64_t batch, int64_t t) const;

  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  DropoutLayer attn_dropout_;
};

}  // namespace rpt

#endif  // RPT_NN_ATTENTION_H_
