#include "nn/module.h"

#include "nn/weight_store.h"
#include "util/logging.h"

namespace rpt {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, tensor] : NamedParameters()) {
    out.push_back(tensor);
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : params_) {
    out->emplace_back(prefix + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const auto& [name, tensor] : NamedParameters()) {
    total += tensor.numel();
  }
  return total;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SaveState(BinaryWriter* writer) const {
  auto named = NamedParameters();
  writer->WriteU64(named.size());
  for (const auto& [name, tensor] : named) {
    writer->WriteString(name);
    writer->WriteI64Vector(tensor.shape());
    writer->WriteFloatVector(tensor.ToVector());
  }
}

Status Module::LoadState(BinaryReader* reader) {
  auto named = NamedParameters();
  for (const auto& [name, tensor] : named) {
    if (tensor.is_view()) {
      return Status::FailedPrecondition(
          "cannot LoadState into a module bound to a shared WeightStore "
          "(parameter " +
          name + " is a view); load into an unbound module and re-freeze");
    }
  }
  auto count = reader->ReadU64();
  if (!count.ok()) return count.status();
  if (*count != named.size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count mismatch: expected " +
        std::to_string(named.size()) + ", got " + std::to_string(*count));
  }
  for (auto& [name, tensor] : named) {
    auto saved_name = reader->ReadString();
    if (!saved_name.ok()) return saved_name.status();
    if (*saved_name != name) {
      return Status::InvalidArgument("checkpoint name mismatch: expected " +
                                     name + ", got " + *saved_name);
    }
    auto shape = reader->ReadI64Vector();
    if (!shape.ok()) return shape.status();
    if (*shape != tensor.shape()) {
      return Status::InvalidArgument("checkpoint shape mismatch for " + name);
    }
    auto values = reader->ReadFloatVector();
    if (!values.ok()) return values.status();
    if (static_cast<int64_t>(values->size()) != tensor.numel()) {
      return Status::InvalidArgument("checkpoint size mismatch for " + name);
    }
    std::copy(values->begin(), values->end(), tensor.data());
  }
  return Status::Ok();
}

Status Module::BindWeights(const std::shared_ptr<const WeightStore>& store,
                           ComputeBackend backend) {
  RPT_CHECK(store != nullptr);
  RPT_RETURN_IF_ERROR(BindWeightsImpl("", store, backend));
  SetTraining(false);
  return Status::Ok();
}

Status Module::BindWeightsImpl(const std::string& prefix,
                               const std::shared_ptr<const WeightStore>& store,
                               ComputeBackend backend) {
  for (auto& [name, tensor] : params_) {
    const std::string full_name = prefix + name;
    const WeightEntry* entry = store->Find(full_name);
    if (entry == nullptr) {
      return Status::InvalidArgument("weight store has no entry for " +
                                     full_name);
    }
    if (entry->shape != tensor.shape()) {
      return Status::InvalidArgument("weight store shape mismatch for " +
                                     full_name);
    }
    tensor.BindTo(store->KeepaliveFor(store), store->DataFor(*entry));
  }
  OnWeightsBound(WeightBindContext{store, backend, prefix});
  for (auto& [name, child] : children_) {
    RPT_RETURN_IF_ERROR(
        child->BindWeightsImpl(prefix + name + ".", store, backend));
  }
  return Status::Ok();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor tensor) {
  tensor.set_requires_grad(true);
  params_.emplace_back(name, tensor);
  return tensor;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  RPT_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace rpt
