// Transformer building blocks and the two model shells used by RPT:
//   * TransformerEncoderModel — BERT-style bidirectional encoder (RPT-E
//     matcher, RPT-I extractor).
//   * Seq2SeqTransformer — BART-style encoder-decoder (RPT-C cleaner and the
//     text-only BART baseline).
//
// Inputs are packed into TokenBatch: flat row-major id buffers plus validity
// flags, with optional column ids and token-type ids whose embeddings are
// summed into the encoder input (the paper's positional + column embeddings,
// Fig. 4).

#ifndef RPT_NN_TRANSFORMER_H_
#define RPT_NN_TRANSFORMER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rpt {

/// Hyper-parameters shared by both model shells.
struct TransformerConfig {
  int64_t vocab_size = 0;        // required
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t num_encoder_layers = 2;
  int64_t num_decoder_layers = 2;
  int64_t ffn_dim = 256;
  int64_t max_seq_len = 128;
  int64_t num_columns = 24;      // distinct column-position embeddings
  int64_t num_token_types = 4;   // e.g. other/[A]/[V]/special
  float dropout = 0.1f;
  bool use_column_embeddings = true;  // Fig. 4 COL_i embeddings
  bool use_type_embeddings = true;    // [A]/[V] token-kind embeddings
};

/// A batch of token sequences, padded to a common length.
struct TokenBatch {
  int64_t batch = 0;
  int64_t len = 0;
  std::vector<int32_t> ids;       // batch*len token ids
  std::vector<int32_t> col_ids;   // batch*len or empty (no column ids)
  std::vector<int32_t> type_ids;  // batch*len or empty
  std::vector<uint8_t> valid;     // batch*len, 1 = real token, 0 = pad

  /// Builds a padded batch from ragged sequences; `pad_id` fills the tail.
  /// Column/type ids are optional per-sequence and padded with 0.
  static TokenBatch Pack(const std::vector<std::vector<int32_t>>& seqs,
                         int32_t pad_id,
                         const std::vector<std::vector<int32_t>>* col_seqs =
                             nullptr,
                         const std::vector<std::vector<int32_t>>* type_seqs =
                             nullptr);
};

/// Position-wise feed-forward block with GELU.
class FeedForward : public Module {
 public:
  FeedForward(int64_t d_model, int64_t ffn_dim, float dropout, Rng* rng);
  Tensor Forward(const Tensor& x, Rng* rng) const;

 private:
  Linear fc1_;
  Linear fc2_;
  DropoutLayer dropout_;
};

/// Pre-LN encoder layer: x += MHA(LN(x)); x += FFN(LN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const TransformerConfig& config, Rng* rng);
  Tensor Forward(const Tensor& x, const Tensor& bias, Rng* rng) const;

 private:
  LayerNormLayer ln1_;
  MultiHeadAttention self_attn_;
  LayerNormLayer ln2_;
  FeedForward ffn_;
  DropoutLayer dropout_;
};

/// Pre-LN decoder layer: causal self-attention, cross-attention, FFN.
class TransformerDecoderLayer : public Module {
 public:
  TransformerDecoderLayer(const TransformerConfig& config, Rng* rng);
  Tensor Forward(const Tensor& x, const Tensor& self_bias,
                 const Tensor& memory, const Tensor& cross_bias,
                 Rng* rng) const;

  /// Incremental decode: processes one new token per row ([B, 1, D]),
  /// appending its K/V to `self_cache` and reading cross-attention K/V from
  /// `cross_cache` (filled once by PrecomputeCross). The newest position
  /// attends to every cached self-attention key, so only the cross bias is
  /// needed. Bit-identical to the matching row of Forward.
  Tensor ForwardStep(const Tensor& x, const Tensor& cross_bias,
                     KVCache* self_cache, KVCache* cross_cache,
                     Rng* rng) const;

  /// Projects the encoder memory into `cache` for cross-attention reuse
  /// across every decode step of a generation.
  void PrecomputeCross(const Tensor& memory, KVCache* cache) const;

 private:
  LayerNormLayer ln1_;
  MultiHeadAttention self_attn_;
  LayerNormLayer ln2_;
  MultiHeadAttention cross_attn_;
  LayerNormLayer ln3_;
  FeedForward ffn_;
  DropoutLayer dropout_;
};

/// Shared input embedding: token + position (+ column) (+ token type),
/// followed by dropout.
class InputEmbedding : public Module {
 public:
  InputEmbedding(const TransformerConfig& config, Rng* rng);

  /// Embeds a TokenBatch into [B, T, D]. Column/type embeddings are added
  /// when both configured and present in the batch. `position_offset`
  /// shifts the position ids, so incremental decoding can embed the newest
  /// token at its true prefix position.
  Tensor Forward(const TokenBatch& batch, Rng* rng,
                 int64_t position_offset = 0) const;

  const Embedding& token_embedding() const { return token_; }

 private:
  TransformerConfig config_;
  Embedding token_;
  Embedding position_;
  std::unique_ptr<Embedding> column_;
  std::unique_ptr<Embedding> type_;
  DropoutLayer dropout_;
};

/// BERT-style bidirectional encoder producing contextual states [B, T, D].
class TransformerEncoderModel : public Module {
 public:
  TransformerEncoderModel(const TransformerConfig& config, Rng* rng);

  /// Contextual hidden states [B, T, D].
  Tensor Encode(const TokenBatch& batch, Rng* rng) const;

  /// Hidden state of position 0 (conventionally [CLS]) for each sequence:
  /// [B, D].
  Tensor EncodePooled(const TokenBatch& batch, Rng* rng) const;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  InputEmbedding embedding_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNormLayer final_ln_;
};

/// Incremental decoding state for one generation: per-decoder-layer
/// self-attention K/V (grown one token per DecodeStep) plus compute-once
/// cross-attention K/V over the encoder memory. Created by BeginDecode;
/// batch rows track the active sequences (greedy rows or beam hypotheses).
struct DecoderState {
  std::vector<KVCache> self_cache;   // one per decoder layer, append-mode
  std::vector<KVCache> cross_cache;  // one per decoder layer, compute-once
  std::vector<uint8_t> src_valid;    // batch*src_len cross-attn key mask
  int64_t batch = 0;
  int64_t src_len = 0;
  int64_t step = 0;  // decoder tokens consumed so far (= cached positions)

  /// Reorders/compacts/replicates the batch rows of every cache (and the
  /// source mask): row i of the result is old row rows[i]. Used to drop
  /// finished rows from a greedy micro-batch and to re-wire beam
  /// hypotheses onto their parents after reordering.
  void GatherRows(const std::vector<int64_t>& rows);
};

/// BART-style denoising encoder-decoder with a tied-vocabulary LM head.
class Seq2SeqTransformer : public Module {
 public:
  Seq2SeqTransformer(const TransformerConfig& config, Rng* rng);

  /// Encoder states [B, Ts, D] for the (possibly corrupted) source.
  Tensor Encode(const TokenBatch& src, Rng* rng) const;

  /// Decoder logits [B, Tt, V] given teacher-forced target input ids.
  /// `src_valid` is the source validity mask used for cross-attention.
  Tensor DecodeLogits(const TokenBatch& tgt, const Tensor& memory,
                      const std::vector<uint8_t>& src_valid,
                      Rng* rng) const;

  /// Convenience: encode src and return decoder logits for tgt.
  Tensor Forward(const TokenBatch& src, const TokenBatch& tgt,
                 Rng* rng) const;

  /// Starts an incremental decode over `memory` ([B, Ts, D], from Encode):
  /// precomputes every layer's cross-attention K/V once and returns an
  /// empty per-layer self-attention cache. `src_valid` is the source
  /// validity mask (batch*Ts, or empty for all-valid).
  DecoderState BeginDecode(const Tensor& memory,
                           const std::vector<uint8_t>& src_valid) const;

  /// Feeds one token per active row (`last_tokens.size() == state->batch`)
  /// and returns next-token logits [B, V]. Each call costs O(1) in the
  /// prefix length (one query row per layer against the cached K/V) and is
  /// bit-identical to the final position of DecodeLogits over the full
  /// prefix. The model should be in eval mode (the generators force it).
  Tensor DecodeStep(const std::vector<int32_t>& last_tokens,
                    DecoderState* state, Rng* rng) const;

  /// Greedy autoregressive generation. Starts each sequence with `bos_id`,
  /// stops at `eos_id` or `max_len` (clamped to max_seq_len - 1 so the
  /// prefix never outgrows the position table). Returns one id sequence per
  /// batch row (without BOS/EOS).
  ///
  /// Decodes the whole batch through the KV-cached DecodeStep — O(1) per
  /// step in prefix length; rows that emit EOS are compacted out of the
  /// decode state, so a micro-batch of ragged-length answers only pays for
  /// its active rows. Eval mode is forced for the duration of the call
  /// (and restored), so results are deterministic even on a model left in
  /// training mode.
  std::vector<std::vector<int32_t>> GenerateGreedy(const TokenBatch& src,
                                                   int32_t bos_id,
                                                   int32_t eos_id,
                                                   int64_t max_len,
                                                   Rng* rng) const;

  /// Beam-search generation for a single sequence (batch==1 slice of src).
  /// Returns the highest-scoring candidates, best first (at most
  /// `num_results`), ranked by length-normalized log-probability.
  ///
  /// Rides the same KV-cached DecodeStep (one state row per hypothesis,
  /// gathered onto parents after each reordering; cross-attention K/V over
  /// the memory is computed once per call, not per step). Decoding stops
  /// early only when no active hypothesis can still beat the established
  /// finished results under length normalization.
  std::vector<std::vector<int32_t>> GenerateBeam(const TokenBatch& src,
                                                 int32_t bos_id,
                                                 int32_t eos_id,
                                                 int64_t max_len,
                                                 int64_t beam_width,
                                                 int64_t num_results,
                                                 Rng* rng) const;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  InputEmbedding src_embedding_;
  InputEmbedding tgt_embedding_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> encoder_layers_;
  std::vector<std::unique_ptr<TransformerDecoderLayer>> decoder_layers_;
  LayerNormLayer encoder_ln_;
  LayerNormLayer decoder_ln_;
  Linear lm_head_;
};

}  // namespace rpt

#endif  // RPT_NN_TRANSFORMER_H_
