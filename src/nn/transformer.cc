#include "nn/transformer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "profile/perf_hooks.h"
#include "util/logging.h"

namespace rpt {

// ---- TokenBatch --------------------------------------------------------------

TokenBatch TokenBatch::Pack(
    const std::vector<std::vector<int32_t>>& seqs, int32_t pad_id,
    const std::vector<std::vector<int32_t>>* col_seqs,
    const std::vector<std::vector<int32_t>>* type_seqs) {
  TokenBatch out;
  out.batch = static_cast<int64_t>(seqs.size());
  out.len = 1;  // avoid zero-length tensors for empty batches/sequences
  for (const auto& s : seqs) {
    out.len = std::max<int64_t>(out.len, static_cast<int64_t>(s.size()));
  }
  const size_t total = static_cast<size_t>(out.batch * out.len);
  out.ids.assign(total, pad_id);
  out.valid.assign(total, 0);
  if (col_seqs != nullptr) out.col_ids.assign(total, 0);
  if (type_seqs != nullptr) out.type_ids.assign(total, 0);
  for (size_t b = 0; b < seqs.size(); ++b) {
    const auto& s = seqs[b];
    if (col_seqs != nullptr) {
      RPT_CHECK_EQ((*col_seqs)[b].size(), s.size());
    }
    if (type_seqs != nullptr) {
      RPT_CHECK_EQ((*type_seqs)[b].size(), s.size());
    }
    for (size_t t = 0; t < s.size(); ++t) {
      const size_t idx = b * static_cast<size_t>(out.len) + t;
      out.ids[idx] = s[t];
      out.valid[idx] = 1;
      if (col_seqs != nullptr) out.col_ids[idx] = (*col_seqs)[b][t];
      if (type_seqs != nullptr) out.type_ids[idx] = (*type_seqs)[b][t];
    }
  }
  return out;
}

// ---- FeedForward --------------------------------------------------------------

FeedForward::FeedForward(int64_t d_model, int64_t ffn_dim, float dropout,
                         Rng* rng)
    : fc1_(d_model, ffn_dim, rng), fc2_(ffn_dim, d_model, rng),
      dropout_(dropout) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
  RegisterModule("dropout", &dropout_);
}

Tensor FeedForward::Forward(const Tensor& x, Rng* rng) const {
  // Fused bias+GELU epilogue in inference; exact composition under autograd.
  Tensor h = fc1_.ForwardAct(x, FusedAct::kGelu);
  h = dropout_.Forward(h, rng);
  return fc2_.Forward(h);
}

// ---- Encoder layer -------------------------------------------------------------

TransformerEncoderLayer::TransformerEncoderLayer(
    const TransformerConfig& config, Rng* rng)
    : ln1_(config.d_model),
      self_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln2_(config.d_model),
      ffn_(config.d_model, config.ffn_dim, config.dropout, rng),
      dropout_(config.dropout) {
  RegisterModule("ln1", &ln1_);
  RegisterModule("self_attn", &self_attn_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("dropout", &dropout_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor& bias,
                                        Rng* rng) const {
  Tensor normed = ln1_.Forward(x);
  Tensor attn = self_attn_.Forward(normed, normed, normed, bias, rng);
  Tensor h = Add(x, dropout_.Forward(attn, rng));
  Tensor ff = ffn_.Forward(ln2_.Forward(h), rng);
  return Add(h, dropout_.Forward(ff, rng));
}

// ---- Decoder layer -------------------------------------------------------------

TransformerDecoderLayer::TransformerDecoderLayer(
    const TransformerConfig& config, Rng* rng)
    : ln1_(config.d_model),
      self_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln2_(config.d_model),
      cross_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln3_(config.d_model),
      ffn_(config.d_model, config.ffn_dim, config.dropout, rng),
      dropout_(config.dropout) {
  RegisterModule("ln1", &ln1_);
  RegisterModule("self_attn", &self_attn_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("cross_attn", &cross_attn_);
  RegisterModule("ln3", &ln3_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("dropout", &dropout_);
}

Tensor TransformerDecoderLayer::Forward(const Tensor& x,
                                        const Tensor& self_bias,
                                        const Tensor& memory,
                                        const Tensor& cross_bias,
                                        Rng* rng) const {
  Tensor normed = ln1_.Forward(x);
  Tensor self = self_attn_.Forward(normed, normed, normed, self_bias, rng);
  Tensor h = Add(x, dropout_.Forward(self, rng));

  Tensor normed2 = ln2_.Forward(h);
  Tensor cross =
      cross_attn_.Forward(normed2, memory, memory, cross_bias, rng);
  h = Add(h, dropout_.Forward(cross, rng));

  Tensor ff = ffn_.Forward(ln3_.Forward(h), rng);
  return Add(h, dropout_.Forward(ff, rng));
}

Tensor TransformerDecoderLayer::ForwardStep(const Tensor& x,
                                            const Tensor& cross_bias,
                                            KVCache* self_cache,
                                            KVCache* cross_cache,
                                            Rng* rng) const {
  // The newest position attends to all cached self-attention keys (the
  // causal mask's last row is all-zero) so no self bias is needed.
  Tensor normed = ln1_.Forward(x);
  Tensor self = self_attn_.Forward(normed, normed, normed, Tensor(), rng,
                                   self_cache);
  Tensor h = Add(x, dropout_.Forward(self, rng));

  Tensor normed2 = ln2_.Forward(h);
  Tensor cross = cross_attn_.Forward(normed2, Tensor(), Tensor(), cross_bias,
                                     rng, cross_cache);
  h = Add(h, dropout_.Forward(cross, rng));

  Tensor ff = ffn_.Forward(ln3_.Forward(h), rng);
  return Add(h, dropout_.Forward(ff, rng));
}

void TransformerDecoderLayer::PrecomputeCross(const Tensor& memory,
                                              KVCache* cache) const {
  RPT_CHECK(cache != nullptr);
  RPT_CHECK(cache->empty()) << "cross-attention cache already filled";
  cross_attn_.AppendKV(memory, memory, cache);
}

// ---- InputEmbedding -------------------------------------------------------------

InputEmbedding::InputEmbedding(const TransformerConfig& config, Rng* rng)
    : config_(config),
      token_(config.vocab_size, config.d_model, rng),
      position_(config.max_seq_len, config.d_model, rng),
      dropout_(config.dropout) {
  RegisterModule("token", &token_);
  RegisterModule("position", &position_);
  if (config.use_column_embeddings) {
    column_ = std::make_unique<Embedding>(config.num_columns, config.d_model,
                                          rng);
    RegisterModule("column", column_.get());
  }
  if (config.use_type_embeddings) {
    type_ = std::make_unique<Embedding>(config.num_token_types,
                                        config.d_model, rng);
    RegisterModule("type", type_.get());
  }
  RegisterModule("dropout", &dropout_);
}

Tensor InputEmbedding::Forward(const TokenBatch& batch, Rng* rng,
                               int64_t position_offset) const {
  RPT_CHECK_GE(position_offset, 0);
  RPT_CHECK_LE(position_offset + batch.len, config_.max_seq_len)
      << "sequence length " << (position_offset + batch.len)
      << " exceeds max_seq_len";
  Tensor x = token_.Forward(batch.ids);  // [B*T, D]

  std::vector<int32_t> pos_ids(batch.ids.size());
  for (int64_t b = 0; b < batch.batch; ++b) {
    for (int64_t t = 0; t < batch.len; ++t) {
      pos_ids[static_cast<size_t>(b * batch.len + t)] =
          static_cast<int32_t>(position_offset + t);
    }
  }
  x = Add(x, position_.Forward(pos_ids));

  if (column_ != nullptr && !batch.col_ids.empty()) {
    // Clamp column ids into the configured table.
    std::vector<int32_t> col(batch.col_ids);
    const int32_t max_col = static_cast<int32_t>(config_.num_columns - 1);
    for (auto& c : col) c = std::min(std::max(c, 0), max_col);
    x = Add(x, column_->Forward(col));
  }
  if (type_ != nullptr && !batch.type_ids.empty()) {
    x = Add(x, type_->Forward(batch.type_ids));
  }
  x = Reshape(x, {batch.batch, batch.len, config_.d_model});
  return dropout_.Forward(x, rng);
}

// ---- TransformerEncoderModel -------------------------------------------------------

TransformerEncoderModel::TransformerEncoderModel(
    const TransformerConfig& config, Rng* rng)
    : config_(config), embedding_(config, rng), final_ln_(config.d_model) {
  RPT_CHECK_GT(config.vocab_size, 0);
  RegisterModule("embedding", &embedding_);
  layers_.reserve(static_cast<size_t>(config.num_encoder_layers));
  for (int64_t i = 0; i < config.num_encoder_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  RegisterModule("final_ln", &final_ln_);
}

Tensor TransformerEncoderModel::Encode(const TokenBatch& batch,
                                       Rng* rng) const {
  ScopedStageTiming timing("nn.encode");
  Tensor x = embedding_.Forward(batch, rng);
  Tensor bias = BuildAttentionBias(batch.batch, config_.num_heads, batch.len,
                                   batch.len, batch.valid,
                                   /*causal=*/false);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, bias, rng);
  }
  return final_ln_.Forward(x);
}

Tensor TransformerEncoderModel::EncodePooled(const TokenBatch& batch,
                                             Rng* rng) const {
  Tensor states = Encode(batch, rng);  // [B, T, D]
  Tensor first = Slice(states, 1, 0, 1);
  return Reshape(first, {batch.batch, config_.d_model});
}

// ---- Seq2SeqTransformer --------------------------------------------------------------

Seq2SeqTransformer::Seq2SeqTransformer(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config),
      src_embedding_(config, rng),
      tgt_embedding_(
          [&config] {
            // The decoder sees plain token sequences: no column/type ids.
            TransformerConfig c = config;
            c.use_column_embeddings = false;
            c.use_type_embeddings = false;
            return c;
          }(),
          rng),
      encoder_ln_(config.d_model),
      decoder_ln_(config.d_model),
      lm_head_(config.d_model, config.vocab_size, rng) {
  RPT_CHECK_GT(config.vocab_size, 0);
  RegisterModule("src_embedding", &src_embedding_);
  RegisterModule("tgt_embedding", &tgt_embedding_);
  for (int64_t i = 0; i < config.num_encoder_layers; ++i) {
    encoder_layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule("enc" + std::to_string(i), encoder_layers_.back().get());
  }
  for (int64_t i = 0; i < config.num_decoder_layers; ++i) {
    decoder_layers_.push_back(
        std::make_unique<TransformerDecoderLayer>(config, rng));
    RegisterModule("dec" + std::to_string(i), decoder_layers_.back().get());
  }
  RegisterModule("encoder_ln", &encoder_ln_);
  RegisterModule("decoder_ln", &decoder_ln_);
  RegisterModule("lm_head", &lm_head_);
}

Tensor Seq2SeqTransformer::Encode(const TokenBatch& src, Rng* rng) const {
  ScopedStageTiming timing("nn.encode");
  Tensor x = src_embedding_.Forward(src, rng);
  Tensor bias = BuildAttentionBias(src.batch, config_.num_heads, src.len,
                                   src.len, src.valid, /*causal=*/false);
  for (const auto& layer : encoder_layers_) {
    x = layer->Forward(x, bias, rng);
  }
  return encoder_ln_.Forward(x);
}

Tensor Seq2SeqTransformer::DecodeLogits(
    const TokenBatch& tgt, const Tensor& memory,
    const std::vector<uint8_t>& src_valid, Rng* rng) const {
  Tensor x = tgt_embedding_.Forward(tgt, rng);
  Tensor self_bias =
      BuildAttentionBias(tgt.batch, config_.num_heads, tgt.len, tgt.len,
                         tgt.valid, /*causal=*/true);
  const int64_t src_len = memory.dim(1);
  Tensor cross_bias =
      BuildAttentionBias(tgt.batch, config_.num_heads, tgt.len, src_len,
                         src_valid, /*causal=*/false);
  for (const auto& layer : decoder_layers_) {
    x = layer->Forward(x, self_bias, memory, cross_bias, rng);
  }
  x = decoder_ln_.Forward(x);
  return lm_head_.Forward(x);  // [B, Tt, V]
}

Tensor Seq2SeqTransformer::Forward(const TokenBatch& src,
                                   const TokenBatch& tgt, Rng* rng) const {
  Tensor memory = Encode(src, rng);
  return DecodeLogits(tgt, memory, src.valid, rng);
}

namespace {

// Forces eval mode (dropout off) for the lifetime of the guard and restores
// the previous mode after. Generation must be deterministic even on a model
// left in training mode — inference-time dropout would silently corrupt
// repairs.
class EvalModeGuard {
 public:
  explicit EvalModeGuard(const Module* module)
      : module_(const_cast<Module*>(module)),
        was_training_(module->training()) {
    if (was_training_) module_->SetTraining(false);
  }
  ~EvalModeGuard() {
    if (was_training_) module_->SetTraining(true);
  }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  Module* module_;
  bool was_training_;
};

}  // namespace

void DecoderState::GatherRows(const std::vector<int64_t>& rows) {
  for (auto& cache : self_cache) cache.GatherRows(rows);
  for (auto& cache : cross_cache) cache.GatherRows(rows);
  if (!src_valid.empty()) {
    std::vector<uint8_t> next;
    next.reserve(rows.size() * static_cast<size_t>(src_len));
    for (int64_t r : rows) {
      RPT_CHECK_GE(r, 0);
      RPT_CHECK_LT(r, batch);
      next.insert(next.end(),
                  src_valid.begin() + r * src_len,
                  src_valid.begin() + (r + 1) * src_len);
    }
    src_valid = std::move(next);
  }
  batch = static_cast<int64_t>(rows.size());
}

DecoderState Seq2SeqTransformer::BeginDecode(
    const Tensor& memory, const std::vector<uint8_t>& src_valid) const {
  ScopedStageTiming timing("nn.prefill");
  NoGradGuard no_grad;
  DecoderState state;
  state.batch = memory.dim(0);
  state.src_len = memory.dim(1);
  state.src_valid = src_valid;
  if (!src_valid.empty()) {
    RPT_CHECK_EQ(static_cast<int64_t>(src_valid.size()),
                 state.batch * state.src_len);
  }
  state.self_cache.resize(decoder_layers_.size());
  state.cross_cache.resize(decoder_layers_.size());
  for (size_t l = 0; l < decoder_layers_.size(); ++l) {
    decoder_layers_[l]->PrecomputeCross(memory, &state.cross_cache[l]);
  }
  return state;
}

Tensor Seq2SeqTransformer::DecodeStep(const std::vector<int32_t>& last_tokens,
                                      DecoderState* state, Rng* rng) const {
  ScopedStageTiming timing("nn.decode_step");
  RPT_CHECK(state != nullptr);
  RPT_CHECK_EQ(static_cast<int64_t>(last_tokens.size()), state->batch);
  RPT_CHECK_LT(state->step, config_.max_seq_len)
      << "decode prefix outgrew max_seq_len";
  NoGradGuard no_grad;

  TokenBatch one;
  one.batch = state->batch;
  one.len = 1;
  one.ids = last_tokens;
  one.valid.assign(last_tokens.size(), 1);
  Tensor x = tgt_embedding_.Forward(one, rng, /*position_offset=*/state->step);

  Tensor cross_bias = BuildIncrementalAttentionBias(
      state->batch, config_.num_heads, state->src_len, state->src_valid);
  for (size_t l = 0; l < decoder_layers_.size(); ++l) {
    x = decoder_layers_[l]->ForwardStep(x, cross_bias, &state->self_cache[l],
                                        &state->cross_cache[l], rng);
  }
  x = decoder_ln_.Forward(x);
  ++state->step;
  return Reshape(lm_head_.Forward(x), {state->batch, config_.vocab_size});
}

std::vector<std::vector<int32_t>> Seq2SeqTransformer::GenerateGreedy(
    const TokenBatch& src, int32_t bos_id, int32_t eos_id, int64_t max_len,
    Rng* rng) const {
  ScopedStageTiming timing("nn.generate_greedy");
  NoGradGuard no_grad;
  EvalModeGuard eval(this);
  // The decoder prefix is 1 (BOS) + generated tokens; clamp so it can never
  // outgrow the position table.
  max_len = std::min(max_len, config_.max_seq_len - 1);
  const int64_t batch = src.batch;
  const int64_t v = config_.vocab_size;
  std::vector<std::vector<int32_t>> generated(
      static_cast<size_t>(batch), std::vector<int32_t>{bos_id});
  if (batch == 0 || max_len <= 0) {
    for (auto& seq : generated) seq.erase(seq.begin());
    return generated;
  }

  Tensor memory = Encode(src, rng);
  DecoderState state = BeginDecode(memory, src.valid);

  // Rows still decoding. When a row emits EOS it is compacted out of the
  // decode state (all caches), so later steps run the decoder over active
  // rows only — with ragged answer lengths the average decode batch shrinks
  // toward the longest answers instead of staying at `batch`.
  std::vector<int64_t> active(static_cast<size_t>(batch));
  for (int64_t b = 0; b < batch; ++b) active[static_cast<size_t>(b)] = b;

  for (int64_t step = 0; step < max_len && !active.empty(); ++step) {
    std::vector<int32_t> last;
    last.reserve(active.size());
    for (int64_t b : active) {
      last.push_back(generated[static_cast<size_t>(b)].back());
    }
    Tensor logits = DecodeStep(last, &state, rng);

    std::vector<int64_t> still_active;
    std::vector<int64_t> keep;  // positions within the current state rows
    still_active.reserve(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      const int64_t b = active[i];
      const float* row = logits.data() + static_cast<int64_t>(i) * v;
      int32_t best = 0;
      for (int64_t c = 1; c < v; ++c) {
        if (row[c] > row[best]) best = static_cast<int32_t>(c);
      }
      if (best != eos_id) {
        generated[static_cast<size_t>(b)].push_back(best);
        still_active.push_back(b);
        keep.push_back(static_cast<int64_t>(i));
      }
    }
    if (still_active.size() != active.size() && !still_active.empty()) {
      state.GatherRows(keep);
    }
    active = std::move(still_active);
  }
  for (auto& seq : generated) {
    seq.erase(seq.begin());  // drop BOS
  }
  return generated;
}

std::vector<std::vector<int32_t>> Seq2SeqTransformer::GenerateBeam(
    const TokenBatch& src, int32_t bos_id, int32_t eos_id, int64_t max_len,
    int64_t beam_width, int64_t num_results, Rng* rng) const {
  ScopedStageTiming timing("nn.generate_beam");
  RPT_CHECK_EQ(src.batch, 1) << "GenerateBeam expects a single sequence";
  RPT_CHECK_GE(beam_width, 1);
  NoGradGuard no_grad;
  EvalModeGuard eval(this);
  max_len = std::min(max_len, config_.max_seq_len - 1);

  struct Hypothesis {
    std::vector<int32_t> ids;  // starts with BOS
    double log_prob = 0.0;
    bool finished = false;
  };
  const auto normalized = [](const Hypothesis& h) {
    return h.log_prob / static_cast<double>(std::max<size_t>(1, h.ids.size()));
  };
  std::vector<Hypothesis> beam = {Hypothesis{{bos_id}, 0.0, false}};
  std::vector<Hypothesis> finished;
  if (max_len <= 0) beam.clear();

  Tensor memory;
  DecoderState state;
  if (!beam.empty()) {
    memory = Encode(src, rng);
    // One state row per hypothesis; cross-attention K/V over the memory is
    // projected once here and only gathered (replicated/reordered) as the
    // beam evolves — never recomputed per step.
    state = BeginDecode(memory, src.valid);
  }
  // An active hypothesis's length-normalized score can only ever reach
  // log_prob / (max_len + 1): log-probs never increase, and ids can grow to
  // at most BOS + max_len tokens. Used for the early-stop test below.
  const double max_ids = static_cast<double>(max_len + 1);

  for (int64_t step = 0; step < max_len && !beam.empty(); ++step) {
    struct Candidate {
      Hypothesis h;
      int64_t parent = 0;  // state row this candidate extends
    };
    std::vector<Candidate> candidates;
    // Batch all active hypotheses through one cached decode step.
    std::vector<int32_t> last;
    last.reserve(beam.size());
    for (const auto& h : beam) last.push_back(h.ids.back());
    Tensor logits = DecodeStep(last, &state, rng);
    const int64_t v = config_.vocab_size;
    for (size_t hi = 0; hi < beam.size(); ++hi) {
      const auto& h = beam[hi];
      const float* row = logits.data() + static_cast<int64_t>(hi) * v;
      // log-softmax of the row.
      float mx = row[0];
      for (int64_t c = 1; c < v; ++c) mx = std::max(mx, row[c]);
      double sum = 0.0;
      for (int64_t c = 0; c < v; ++c) sum += std::exp(row[c] - mx);
      const double lse = mx + std::log(sum);
      // Keep the top beam_width continuations of this hypothesis.
      std::vector<int32_t> order(static_cast<size_t>(v));
      for (int64_t c = 0; c < v; ++c) {
        order[static_cast<size_t>(c)] = static_cast<int32_t>(c);
      }
      std::partial_sort(order.begin(),
                        order.begin() +
                            std::min<int64_t>(beam_width, v),
                        order.end(), [row](int32_t a, int32_t b) {
                          return row[a] > row[b];
                        });
      for (int64_t k = 0; k < std::min<int64_t>(beam_width, v); ++k) {
        const int32_t tok = order[static_cast<size_t>(k)];
        Hypothesis next = h;
        next.log_prob += row[tok] - lse;
        if (tok == eos_id) {
          next.finished = true;
          finished.push_back(next);
        } else {
          next.ids.push_back(tok);
          candidates.push_back(
              Candidate{std::move(next), static_cast<int64_t>(hi)});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.h.log_prob > b.h.log_prob;
              });
    if (static_cast<int64_t>(candidates.size()) > beam_width) {
      candidates.resize(static_cast<size_t>(beam_width));
    }

    // Early stop only when provably safe: enough hypotheses have finished
    // AND even the best active hypothesis's optimistic bound cannot beat
    // the k-th best finished score under length normalization. (The old
    // "finished >= beam_width" break could discard an active hypothesis
    // that was still going to win.)
    const size_t k_needed = static_cast<size_t>(
        std::max<int64_t>(beam_width, num_results));
    bool stop = false;
    if (!candidates.empty() && finished.size() >= k_needed) {
      std::vector<double> scores;
      scores.reserve(finished.size());
      for (const auto& h : finished) scores.push_back(normalized(h));
      std::nth_element(scores.begin(), scores.begin() + (k_needed - 1),
                       scores.end(), std::greater<double>());
      const double kth_score = scores[k_needed - 1];
      double best_bound = -std::numeric_limits<double>::infinity();
      for (const auto& c : candidates) {
        best_bound = std::max(best_bound, c.h.log_prob / max_ids);
      }
      stop = best_bound <= kth_score;
    }

    std::vector<Hypothesis> next_beam;
    std::vector<int64_t> parents;
    next_beam.reserve(candidates.size());
    parents.reserve(candidates.size());
    for (auto& c : candidates) {
      next_beam.push_back(std::move(c.h));
      parents.push_back(c.parent);
    }
    beam = std::move(next_beam);
    if (stop) break;
    // Re-wire the decode state rows onto each surviving candidate's parent
    // (replicating rows as the beam widens, dropping pruned ones).
    if (!beam.empty()) state.GatherRows(parents);
  }
  // Unfinished hypotheses still count (length cap or early stop). Their
  // normalized score is never above their optimistic bound, so an early
  // stop cannot let a truncated hypothesis displace a finished winner.
  for (const auto& h : beam) finished.push_back(h);
  std::sort(finished.begin(), finished.end(),
            [&normalized](const Hypothesis& a, const Hypothesis& b) {
              return normalized(a) > normalized(b);
            });
  std::vector<std::vector<int32_t>> out;
  for (const auto& h : finished) {
    if (static_cast<int64_t>(out.size()) >= num_results) break;
    std::vector<int32_t> ids(h.ids.begin() + 1, h.ids.end());  // drop BOS
    out.push_back(std::move(ids));
  }
  return out;
}

}  // namespace rpt
