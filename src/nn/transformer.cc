#include "nn/transformer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rpt {

// ---- TokenBatch --------------------------------------------------------------

TokenBatch TokenBatch::Pack(
    const std::vector<std::vector<int32_t>>& seqs, int32_t pad_id,
    const std::vector<std::vector<int32_t>>* col_seqs,
    const std::vector<std::vector<int32_t>>* type_seqs) {
  TokenBatch out;
  out.batch = static_cast<int64_t>(seqs.size());
  out.len = 1;  // avoid zero-length tensors for empty batches/sequences
  for (const auto& s : seqs) {
    out.len = std::max<int64_t>(out.len, static_cast<int64_t>(s.size()));
  }
  const size_t total = static_cast<size_t>(out.batch * out.len);
  out.ids.assign(total, pad_id);
  out.valid.assign(total, 0);
  if (col_seqs != nullptr) out.col_ids.assign(total, 0);
  if (type_seqs != nullptr) out.type_ids.assign(total, 0);
  for (size_t b = 0; b < seqs.size(); ++b) {
    const auto& s = seqs[b];
    if (col_seqs != nullptr) {
      RPT_CHECK_EQ((*col_seqs)[b].size(), s.size());
    }
    if (type_seqs != nullptr) {
      RPT_CHECK_EQ((*type_seqs)[b].size(), s.size());
    }
    for (size_t t = 0; t < s.size(); ++t) {
      const size_t idx = b * static_cast<size_t>(out.len) + t;
      out.ids[idx] = s[t];
      out.valid[idx] = 1;
      if (col_seqs != nullptr) out.col_ids[idx] = (*col_seqs)[b][t];
      if (type_seqs != nullptr) out.type_ids[idx] = (*type_seqs)[b][t];
    }
  }
  return out;
}

// ---- FeedForward --------------------------------------------------------------

FeedForward::FeedForward(int64_t d_model, int64_t ffn_dim, float dropout,
                         Rng* rng)
    : fc1_(d_model, ffn_dim, rng), fc2_(ffn_dim, d_model, rng),
      dropout_(dropout) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
  RegisterModule("dropout", &dropout_);
}

Tensor FeedForward::Forward(const Tensor& x, Rng* rng) const {
  Tensor h = Gelu(fc1_.Forward(x));
  h = dropout_.Forward(h, rng);
  return fc2_.Forward(h);
}

// ---- Encoder layer -------------------------------------------------------------

TransformerEncoderLayer::TransformerEncoderLayer(
    const TransformerConfig& config, Rng* rng)
    : ln1_(config.d_model),
      self_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln2_(config.d_model),
      ffn_(config.d_model, config.ffn_dim, config.dropout, rng),
      dropout_(config.dropout) {
  RegisterModule("ln1", &ln1_);
  RegisterModule("self_attn", &self_attn_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("dropout", &dropout_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor& bias,
                                        Rng* rng) const {
  Tensor normed = ln1_.Forward(x);
  Tensor attn = self_attn_.Forward(normed, normed, normed, bias, rng);
  Tensor h = Add(x, dropout_.Forward(attn, rng));
  Tensor ff = ffn_.Forward(ln2_.Forward(h), rng);
  return Add(h, dropout_.Forward(ff, rng));
}

// ---- Decoder layer -------------------------------------------------------------

TransformerDecoderLayer::TransformerDecoderLayer(
    const TransformerConfig& config, Rng* rng)
    : ln1_(config.d_model),
      self_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln2_(config.d_model),
      cross_attn_(config.d_model, config.num_heads, config.dropout, rng),
      ln3_(config.d_model),
      ffn_(config.d_model, config.ffn_dim, config.dropout, rng),
      dropout_(config.dropout) {
  RegisterModule("ln1", &ln1_);
  RegisterModule("self_attn", &self_attn_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("cross_attn", &cross_attn_);
  RegisterModule("ln3", &ln3_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("dropout", &dropout_);
}

Tensor TransformerDecoderLayer::Forward(const Tensor& x,
                                        const Tensor& self_bias,
                                        const Tensor& memory,
                                        const Tensor& cross_bias,
                                        Rng* rng) const {
  Tensor normed = ln1_.Forward(x);
  Tensor self = self_attn_.Forward(normed, normed, normed, self_bias, rng);
  Tensor h = Add(x, dropout_.Forward(self, rng));

  Tensor normed2 = ln2_.Forward(h);
  Tensor cross =
      cross_attn_.Forward(normed2, memory, memory, cross_bias, rng);
  h = Add(h, dropout_.Forward(cross, rng));

  Tensor ff = ffn_.Forward(ln3_.Forward(h), rng);
  return Add(h, dropout_.Forward(ff, rng));
}

// ---- InputEmbedding -------------------------------------------------------------

InputEmbedding::InputEmbedding(const TransformerConfig& config, Rng* rng)
    : config_(config),
      token_(config.vocab_size, config.d_model, rng),
      position_(config.max_seq_len, config.d_model, rng),
      dropout_(config.dropout) {
  RegisterModule("token", &token_);
  RegisterModule("position", &position_);
  if (config.use_column_embeddings) {
    column_ = std::make_unique<Embedding>(config.num_columns, config.d_model,
                                          rng);
    RegisterModule("column", column_.get());
  }
  if (config.use_type_embeddings) {
    type_ = std::make_unique<Embedding>(config.num_token_types,
                                        config.d_model, rng);
    RegisterModule("type", type_.get());
  }
  RegisterModule("dropout", &dropout_);
}

Tensor InputEmbedding::Forward(const TokenBatch& batch, Rng* rng) const {
  RPT_CHECK_LE(batch.len, config_.max_seq_len)
      << "sequence length " << batch.len << " exceeds max_seq_len";
  Tensor x = token_.Forward(batch.ids);  // [B*T, D]

  std::vector<int32_t> pos_ids(batch.ids.size());
  for (int64_t b = 0; b < batch.batch; ++b) {
    for (int64_t t = 0; t < batch.len; ++t) {
      pos_ids[static_cast<size_t>(b * batch.len + t)] =
          static_cast<int32_t>(t);
    }
  }
  x = Add(x, position_.Forward(pos_ids));

  if (column_ != nullptr && !batch.col_ids.empty()) {
    // Clamp column ids into the configured table.
    std::vector<int32_t> col(batch.col_ids);
    const int32_t max_col = static_cast<int32_t>(config_.num_columns - 1);
    for (auto& c : col) c = std::min(std::max(c, 0), max_col);
    x = Add(x, column_->Forward(col));
  }
  if (type_ != nullptr && !batch.type_ids.empty()) {
    x = Add(x, type_->Forward(batch.type_ids));
  }
  x = Reshape(x, {batch.batch, batch.len, config_.d_model});
  return dropout_.Forward(x, rng);
}

// ---- TransformerEncoderModel -------------------------------------------------------

TransformerEncoderModel::TransformerEncoderModel(
    const TransformerConfig& config, Rng* rng)
    : config_(config), embedding_(config, rng), final_ln_(config.d_model) {
  RPT_CHECK_GT(config.vocab_size, 0);
  RegisterModule("embedding", &embedding_);
  layers_.reserve(static_cast<size_t>(config.num_encoder_layers));
  for (int64_t i = 0; i < config.num_encoder_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  RegisterModule("final_ln", &final_ln_);
}

Tensor TransformerEncoderModel::Encode(const TokenBatch& batch,
                                       Rng* rng) const {
  Tensor x = embedding_.Forward(batch, rng);
  Tensor bias = BuildAttentionBias(batch.batch, config_.num_heads, batch.len,
                                   batch.len, batch.valid,
                                   /*causal=*/false);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, bias, rng);
  }
  return final_ln_.Forward(x);
}

Tensor TransformerEncoderModel::EncodePooled(const TokenBatch& batch,
                                             Rng* rng) const {
  Tensor states = Encode(batch, rng);  // [B, T, D]
  Tensor first = Slice(states, 1, 0, 1);
  return Reshape(first, {batch.batch, config_.d_model});
}

// ---- Seq2SeqTransformer --------------------------------------------------------------

Seq2SeqTransformer::Seq2SeqTransformer(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config),
      src_embedding_(config, rng),
      tgt_embedding_(
          [&config] {
            // The decoder sees plain token sequences: no column/type ids.
            TransformerConfig c = config;
            c.use_column_embeddings = false;
            c.use_type_embeddings = false;
            return c;
          }(),
          rng),
      encoder_ln_(config.d_model),
      decoder_ln_(config.d_model),
      lm_head_(config.d_model, config.vocab_size, rng) {
  RPT_CHECK_GT(config.vocab_size, 0);
  RegisterModule("src_embedding", &src_embedding_);
  RegisterModule("tgt_embedding", &tgt_embedding_);
  for (int64_t i = 0; i < config.num_encoder_layers; ++i) {
    encoder_layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule("enc" + std::to_string(i), encoder_layers_.back().get());
  }
  for (int64_t i = 0; i < config.num_decoder_layers; ++i) {
    decoder_layers_.push_back(
        std::make_unique<TransformerDecoderLayer>(config, rng));
    RegisterModule("dec" + std::to_string(i), decoder_layers_.back().get());
  }
  RegisterModule("encoder_ln", &encoder_ln_);
  RegisterModule("decoder_ln", &decoder_ln_);
  RegisterModule("lm_head", &lm_head_);
}

Tensor Seq2SeqTransformer::Encode(const TokenBatch& src, Rng* rng) const {
  Tensor x = src_embedding_.Forward(src, rng);
  Tensor bias = BuildAttentionBias(src.batch, config_.num_heads, src.len,
                                   src.len, src.valid, /*causal=*/false);
  for (const auto& layer : encoder_layers_) {
    x = layer->Forward(x, bias, rng);
  }
  return encoder_ln_.Forward(x);
}

Tensor Seq2SeqTransformer::DecodeLogits(
    const TokenBatch& tgt, const Tensor& memory,
    const std::vector<uint8_t>& src_valid, Rng* rng) const {
  Tensor x = tgt_embedding_.Forward(tgt, rng);
  Tensor self_bias =
      BuildAttentionBias(tgt.batch, config_.num_heads, tgt.len, tgt.len,
                         tgt.valid, /*causal=*/true);
  const int64_t src_len = memory.dim(1);
  Tensor cross_bias =
      BuildAttentionBias(tgt.batch, config_.num_heads, tgt.len, src_len,
                         src_valid, /*causal=*/false);
  for (const auto& layer : decoder_layers_) {
    x = layer->Forward(x, self_bias, memory, cross_bias, rng);
  }
  x = decoder_ln_.Forward(x);
  return lm_head_.Forward(x);  // [B, Tt, V]
}

Tensor Seq2SeqTransformer::Forward(const TokenBatch& src,
                                   const TokenBatch& tgt, Rng* rng) const {
  Tensor memory = Encode(src, rng);
  return DecodeLogits(tgt, memory, src.valid, rng);
}

namespace {

// Gathers `rows` of a [B, T, D] tensor into a new [rows.size(), T, D]
// tensor (inference-only: no autograd edge).
Tensor GatherRows3d(const Tensor& m, const std::vector<int64_t>& rows) {
  const int64_t t = m.dim(1);
  const int64_t d = m.dim(2);
  Tensor out = Tensor::Zeros({static_cast<int64_t>(rows.size()), t, d});
  const size_t row_elems = static_cast<size_t>(t * d);
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* from = m.data() + rows[i] * t * d;
    std::copy(from, from + row_elems, out.data() + i * row_elems);
  }
  return out;
}

}  // namespace

std::vector<std::vector<int32_t>> Seq2SeqTransformer::GenerateGreedy(
    const TokenBatch& src, int32_t bos_id, int32_t eos_id, int64_t max_len,
    Rng* rng) const {
  NoGradGuard no_grad;
  Tensor memory = Encode(src, rng);
  const int64_t batch = src.batch;
  const int64_t v = config_.vocab_size;
  std::vector<std::vector<int32_t>> generated(
      static_cast<size_t>(batch), std::vector<int32_t>{bos_id});

  // Rows still decoding. When a row emits EOS it is compacted out, so later
  // steps run the decoder (and cross-attention memory) over active rows
  // only — with ragged answer lengths the average decode batch shrinks
  // toward the longest answers instead of staying at `batch`.
  std::vector<int64_t> active(static_cast<size_t>(batch));
  for (int64_t b = 0; b < batch; ++b) active[static_cast<size_t>(b)] = b;
  Tensor active_memory = memory;
  std::vector<uint8_t> active_valid = src.valid;

  for (int64_t step = 0; step < max_len && !active.empty(); ++step) {
    std::vector<std::vector<int32_t>> prefixes;
    prefixes.reserve(active.size());
    for (int64_t b : active) prefixes.push_back(generated[static_cast<size_t>(b)]);
    TokenBatch tgt = TokenBatch::Pack(prefixes, /*pad_id=*/eos_id);
    Tensor logits = DecodeLogits(tgt, active_memory, active_valid, rng);

    std::vector<int64_t> still_active;
    still_active.reserve(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      const int64_t b = active[i];
      const int64_t t =
          static_cast<int64_t>(generated[static_cast<size_t>(b)].size()) - 1;
      const float* row =
          logits.data() + (static_cast<int64_t>(i) * tgt.len + t) * v;
      int32_t best = 0;
      for (int64_t c = 1; c < v; ++c) {
        if (row[c] > row[best]) best = static_cast<int32_t>(c);
      }
      if (best != eos_id) {
        generated[static_cast<size_t>(b)].push_back(best);
        still_active.push_back(b);
      }
    }
    if (still_active.size() != active.size() && !still_active.empty()) {
      // Compact memory/masks down to the surviving rows. `still_active`
      // holds original batch indices; map them to positions in `active`.
      std::vector<int64_t> keep;
      keep.reserve(still_active.size());
      std::vector<uint8_t> next_valid;
      const size_t src_len = static_cast<size_t>(active_memory.dim(1));
      size_t j = 0;
      for (size_t i = 0; i < active.size(); ++i) {
        if (j < still_active.size() && active[i] == still_active[j]) {
          keep.push_back(static_cast<int64_t>(i));
          next_valid.insert(next_valid.end(),
                            active_valid.begin() + i * src_len,
                            active_valid.begin() + (i + 1) * src_len);
          ++j;
        }
      }
      active_memory = GatherRows3d(active_memory, keep);
      active_valid = std::move(next_valid);
    }
    active = std::move(still_active);
  }
  for (auto& seq : generated) {
    seq.erase(seq.begin());  // drop BOS
  }
  return generated;
}

std::vector<std::vector<int32_t>> Seq2SeqTransformer::GenerateBeam(
    const TokenBatch& src, int32_t bos_id, int32_t eos_id, int64_t max_len,
    int64_t beam_width, int64_t num_results, Rng* rng) const {
  RPT_CHECK_EQ(src.batch, 1) << "GenerateBeam expects a single sequence";
  RPT_CHECK_GE(beam_width, 1);
  NoGradGuard no_grad;
  Tensor memory = Encode(src, rng);

  struct Hypothesis {
    std::vector<int32_t> ids;  // starts with BOS
    double log_prob = 0.0;
    bool finished = false;
  };
  std::vector<Hypothesis> beam = {Hypothesis{{bos_id}, 0.0, false}};
  std::vector<Hypothesis> finished;

  for (int64_t step = 0; step < max_len && !beam.empty(); ++step) {
    std::vector<Hypothesis> candidates;
    // Batch all active hypotheses through the decoder at once.
    std::vector<std::vector<int32_t>> prefixes;
    prefixes.reserve(beam.size());
    for (const auto& h : beam) prefixes.push_back(h.ids);
    TokenBatch tgt = TokenBatch::Pack(prefixes, /*pad_id=*/eos_id);
    // Replicate memory and masks per hypothesis.
    std::vector<Tensor> memories(prefixes.size(), memory);
    Tensor rep_memory = Concat(memories, 0);
    std::vector<uint8_t> rep_valid;
    for (size_t i = 0; i < prefixes.size(); ++i) {
      rep_valid.insert(rep_valid.end(), src.valid.begin(), src.valid.end());
    }
    Tensor logits = DecodeLogits(tgt, rep_memory, rep_valid, rng);
    const int64_t v = config_.vocab_size;
    for (size_t hi = 0; hi < beam.size(); ++hi) {
      const auto& h = beam[hi];
      const int64_t t = static_cast<int64_t>(h.ids.size()) - 1;
      const float* row =
          logits.data() + (static_cast<int64_t>(hi) * tgt.len + t) * v;
      // log-softmax of the row.
      float mx = row[0];
      for (int64_t c = 1; c < v; ++c) mx = std::max(mx, row[c]);
      double sum = 0.0;
      for (int64_t c = 0; c < v; ++c) sum += std::exp(row[c] - mx);
      const double lse = mx + std::log(sum);
      // Keep the top beam_width continuations of this hypothesis.
      std::vector<int32_t> order(static_cast<size_t>(v));
      for (int64_t c = 0; c < v; ++c) {
        order[static_cast<size_t>(c)] = static_cast<int32_t>(c);
      }
      std::partial_sort(order.begin(),
                        order.begin() +
                            std::min<int64_t>(beam_width, v),
                        order.end(), [row](int32_t a, int32_t b) {
                          return row[a] > row[b];
                        });
      for (int64_t k = 0; k < std::min<int64_t>(beam_width, v); ++k) {
        const int32_t tok = order[static_cast<size_t>(k)];
        Hypothesis next = h;
        next.log_prob += row[tok] - lse;
        if (tok == eos_id) {
          next.finished = true;
          finished.push_back(next);
        } else {
          next.ids.push_back(tok);
          candidates.push_back(std::move(next));
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.log_prob > b.log_prob;
              });
    if (static_cast<int64_t>(candidates.size()) > beam_width) {
      candidates.resize(static_cast<size_t>(beam_width));
    }
    beam = std::move(candidates);
    if (static_cast<int64_t>(finished.size()) >= beam_width) break;
  }
  // Unfinished hypotheses still count (length cap reached).
  for (const auto& h : beam) finished.push_back(h);
  std::sort(finished.begin(), finished.end(),
            [](const Hypothesis& a, const Hypothesis& b) {
              // Length-normalized score.
              const double la = a.log_prob / std::max<size_t>(1, a.ids.size());
              const double lb = b.log_prob / std::max<size_t>(1, b.ids.size());
              return la > lb;
            });
  std::vector<std::vector<int32_t>> out;
  for (const auto& h : finished) {
    if (static_cast<int64_t>(out.size()) >= num_results) break;
    std::vector<int32_t> ids(h.ids.begin() + 1, h.ids.end());  // drop BOS
    out.push_back(std::move(ids));
  }
  return out;
}

}  // namespace rpt
