#include "nn/backend.h"

namespace rpt {

const char* ComputeBackendName(ComputeBackend backend) {
  switch (backend) {
    case ComputeBackend::kAuto:
      return "auto";
    case ComputeBackend::kCpuScalar:
      return "cpu-scalar";
    case ComputeBackend::kCpuSimd:
      return "cpu-simd";
    case ComputeBackend::kCpuInt8:
      return "cpu-int8";
  }
  return "unknown";
}

bool ParseComputeBackend(const std::string& text, ComputeBackend* out) {
  if (text == "auto") {
    *out = ComputeBackend::kAuto;
  } else if (text == "cpu-scalar" || text == "scalar") {
    *out = ComputeBackend::kCpuScalar;
  } else if (text == "cpu-simd" || text == "simd") {
    *out = ComputeBackend::kCpuSimd;
  } else if (text == "cpu-int8" || text == "int8") {
    *out = ComputeBackend::kCpuInt8;
  } else {
    return false;
  }
  return true;
}

ScopedComputeBackend::ScopedComputeBackend(ComputeBackend backend) {
  switch (backend) {
    case ComputeBackend::kCpuScalar:
      override_.emplace(TensorBackend::kScalar);
      break;
    case ComputeBackend::kCpuSimd:
      override_.emplace(TensorBackend::kAvx2);
      break;
    case ComputeBackend::kAuto:
    case ComputeBackend::kCpuInt8:
      break;
  }
}

}  // namespace rpt
