#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace rpt {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  learning_rate_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        vel[j] = momentum_ * vel[j] + g[j];
        w[j] -= learning_rate_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        w[j] -= learning_rate_ * g[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  learning_rate_ = lr;
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) {
        update += weight_decay_ * w[j];
      }
      w[j] -= learning_rate_ * update;
    }
  }
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  RPT_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      total_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      Tensor t = p;  // cheap handle copy
      float* g = t.grad_data();
      const int64_t n = t.numel();
      for (int64_t j = 0; j < n; ++j) g[j] *= scale;
    }
  }
  return norm;
}

float WarmupSchedule::LearningRate(int64_t step) const {
  RPT_CHECK_GE(step, 1);
  const double s = static_cast<double>(step);
  const double w = static_cast<double>(warmup_steps_);
  const double scale = std::min(s / w, std::sqrt(w / s));
  return static_cast<float>(peak_lr_ * scale);
}

}  // namespace rpt
