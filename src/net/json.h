// Minimal JSON helpers for the HTTP front-end's line-oriented protocol.
//
// The net layer speaks newline-delimited JSON: every request body line is
// one flat object of string fields ({"input": "..."}), every response line
// one flat object of string/number/bool fields. That tiny dialect needs no
// general JSON tree — just correct string escaping both ways — so these
// helpers stay dependency-free instead of pulling a JSON library into the
// build.
//
// JsonParseFlatObject accepts one JSON object whose values are strings,
// numbers, booleans, or null, and returns every field as its string
// rendering (numbers/bools verbatim, null as ""). Nested objects or arrays
// are rejected — the protocol never uses them. Escapes handled: the eight
// JSON escapes plus \uXXXX (including surrogate pairs), decoded to UTF-8.

#ifndef RPT_NET_JSON_H_
#define RPT_NET_JSON_H_

#include <map>
#include <string>
#include <string_view>

namespace rpt {
namespace net {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included): ", \, and control characters become their JSON escapes.
std::string JsonEscape(std::string_view text);

/// `"<escaped text>"` — JsonEscape with the surrounding quotes.
std::string JsonString(std::string_view text);

/// Parses one flat JSON object (see header comment). On success fills
/// `*fields` (string values fully unescaped) and returns true; on any
/// malformed input returns false with `*error` naming the defect.
bool JsonParseFlatObject(std::string_view text,
                         std::map<std::string, std::string>* fields,
                         std::string* error);

}  // namespace net
}  // namespace rpt

#endif  // RPT_NET_JSON_H_
