#include "net/service.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/json.h"
#include "obs/metrics.h"

namespace rpt {
namespace net {

namespace {

constexpr const char* kNdjsonType = "application/x-ndjson";

/// Shared state for the lines of one HTTP request. Line completions arrive
/// on arbitrary threads (inline on the loop thread for cache hits, on a
/// collector thread for model results); the mutex orders them. Emission is
/// strictly in line order: a completed line waits until every earlier line
/// has been emitted.
struct BatchState {
  std::mutex mu;
  std::shared_ptr<ResponseWriter> writer;
  bool streaming = false;
  std::vector<std::string> lines;  // rendered response lines
  std::vector<bool> ready;
  size_t next_to_emit = 0;
};

void CompleteLine(const std::shared_ptr<BatchState>& state, size_t index,
                  const ServeResponse& response) {
  std::lock_guard<std::mutex> lock(state->mu);
  state->lines[index] = RenderResponseLine(response);
  state->ready[index] = true;
  if (!state->streaming) {
    // Single-line request: one whole response, code mapped from the serve
    // status.
    HttpResponse http;
    http.code = HttpCodeForStatus(response.status.code());
    http.body = state->lines[index] + "\n";
    state->writer->Send(std::move(http));
    return;
  }
  while (state->next_to_emit < state->lines.size() &&
         state->ready[state->next_to_emit]) {
    state->writer->WriteChunk(state->lines[state->next_to_emit] + "\n");
    ++state->next_to_emit;
  }
  if (state->next_to_emit == state->lines.size()) state->writer->EndChunked();
}

}  // namespace

int HttpCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:               return 200;
    case StatusCode::kInvalidArgument:  return 400;
    case StatusCode::kNotFound:         return 404;
    case StatusCode::kUnavailable:      return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    default:                            return 500;
  }
}

std::string RenderResponseLine(const ServeResponse& response) {
  if (!response.status.ok()) {
    std::string line = "{\"error\":";
    line += JsonString(StatusCodeName(response.status.code()));
    line += ",\"message\":";
    line += JsonString(response.status.message());
    line += "}";
    return line;
  }
  char latency[32];
  std::snprintf(latency, sizeof(latency), "%.3f", response.latency_ms);
  std::string line = "{\"output\":";
  line += JsonString(response.output);
  line += ",\"cache_hit\":";
  line += response.cache_hit ? "true" : "false";
  line += ",\"latency_ms\":";
  line += latency;
  line += ",\"batch_size\":";
  line += std::to_string(response.batch_size);
  line += "}";
  return line;
}

bool QueryFlag(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string_view part = query.substr(
        pos, amp == std::string_view::npos ? query.size() - pos : amp - pos);
    if (part == key) return true;
    if (part.size() == key.size() + 2 && part.substr(0, key.size()) == key &&
        part[key.size()] == '=' && part[key.size() + 1] == '1') {
      return true;
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return false;
}

RptHttpService::RptHttpService(RoutedServer* server,
                               std::chrono::milliseconds default_timeout)
    : server_(server), default_timeout_(default_timeout) {}

void RptHttpService::Register(HttpServer* http) {
  http->Handle("GET", "/healthz",
               [](const HttpRequest&, std::shared_ptr<ResponseWriter> writer) {
                 HttpResponse response;
                 response.content_type = "text/plain; charset=utf-8";
                 response.body = "ok\n";
                 writer->Send(std::move(response));
               });
  http->Handle(
      "GET", "/metrics",
      [server = server_](const HttpRequest&,
                         std::shared_ptr<ResponseWriter> writer) {
        HttpResponse response;
        // Prometheus text exposition format version 0.0.4.
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = server->MetricsText();
        writer->Send(std::move(response));
      });
  for (const std::string& route : server_->RouteNames()) {
    http->Handle("POST", "/v1/" + route,
                 [this, route](const HttpRequest& request,
                               std::shared_ptr<ResponseWriter> writer) {
                   HandleSubmit(route, request, std::move(writer));
                 });
  }
}

void RptHttpService::HandleSubmit(const std::string& route,
                                  const HttpRequest& request,
                                  std::shared_ptr<ResponseWriter> writer) {
  // Parse every line before submitting anything: a malformed body answers
  // 400 and never reaches the serving layer.
  std::vector<std::string> inputs;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < request.body.size()) {
    size_t end = request.body.find('\n', pos);
    if (end == std::string::npos) end = request.body.size();
    const std::string_view line(request.body.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    std::map<std::string, std::string> fields;
    std::string error;
    if (!JsonParseFlatObject(line, &fields, &error)) {
      HttpResponse response;
      response.code = 400;
      response.body = "{\"error\":\"InvalidArgument\",\"message\":" +
                      JsonString("body line " + std::to_string(line_no) +
                                 ": " + error) +
                      "}\n";
      writer->Send(std::move(response));
      return;
    }
    const auto input = fields.find("input");
    if (input == fields.end()) {
      HttpResponse response;
      response.code = 400;
      response.body = "{\"error\":\"InvalidArgument\",\"message\":" +
                      JsonString("body line " + std::to_string(line_no) +
                                 ": missing \"input\" field") +
                      "}\n";
      writer->Send(std::move(response));
      return;
    }
    inputs.push_back(input->second);
  }
  if (inputs.empty()) {
    HttpResponse response;
    response.code = 400;
    response.body =
        "{\"error\":\"InvalidArgument\",\"message\":\"empty body\"}\n";
    writer->Send(std::move(response));
    return;
  }

  std::chrono::milliseconds timeout = default_timeout_;
  {
    size_t qpos = request.query.find("timeout_ms=");
    if (qpos != std::string::npos &&
        (qpos == 0 || request.query[qpos - 1] == '&')) {
      const long parsed =
          std::strtol(request.query.c_str() + qpos + 11, nullptr, 10);
      if (parsed > 0) timeout = std::chrono::milliseconds(parsed);
    }
  }

  auto state = std::make_shared<BatchState>();
  state->writer = std::move(writer);
  state->streaming =
      inputs.size() > 1 || QueryFlag(request.query, "stream");
  state->lines.resize(inputs.size());
  state->ready.resize(inputs.size(), false);
  if (state->streaming) {
    // Headers leave immediately; each line streams as it completes. Serve
    // failures after this point are in-band error lines.
    state->writer->BeginChunked(200, kNdjsonType);
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    server_->SubmitAsync(
        route, std::move(inputs[i]),
        [state, i](ServeResponse response) {
          CompleteLine(state, i, response);
        },
        timeout);
  }
}

}  // namespace net
}  // namespace rpt
