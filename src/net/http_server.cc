#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace rpt {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 << 10;

std::string ChunkFrame(const std::string& data) {
  char head[32];
  const int n = std::snprintf(head, sizeof(head), "%zx\r\n", data.size());
  std::string out;
  out.reserve(static_cast<size_t>(n) + data.size() + 2);
  out.append(head, static_cast<size_t>(n));
  out.append(data);
  out.append("\r\n");
  return out;
}

}  // namespace

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Error";
  }
}

// ---------------------------------------------------------------------------
// ResponseWriter — every method hops onto the loop thread via Post. After
// the loop stops the posts are dropped, so late completions from collector
// threads during shutdown are safe no-ops.
// ---------------------------------------------------------------------------

void ResponseWriter::Send(HttpResponse response) {
  if (begun_.exchange(true) || finished_.exchange(true)) {
    RPT_LOG(Warning) << "ResponseWriter::Send after response already begun";
    return;
  }
  HttpServer* server = server_;
  const uint64_t conn_id = conn_id_;
  const uint64_t seq = request_seq_;
  loop_->Post([server, conn_id, seq, response = std::move(response)]() mutable {
    server->CompleteSend(conn_id, seq, std::move(response));
  });
}

void ResponseWriter::BeginChunked(int code, std::string content_type) {
  if (begun_.exchange(true)) {
    RPT_LOG(Warning) << "ResponseWriter::BeginChunked after response begun";
    return;
  }
  HttpServer* server = server_;
  const uint64_t conn_id = conn_id_;
  const uint64_t seq = request_seq_;
  loop_->Post([server, conn_id, seq, code,
               content_type = std::move(content_type)]() mutable {
    server->CompleteBeginChunked(conn_id, seq, code, std::move(content_type));
  });
}

void ResponseWriter::WriteChunk(std::string data) {
  if (!begun_.load() || finished_.load()) {
    RPT_LOG(Warning) << "ResponseWriter::WriteChunk outside chunked response";
    return;
  }
  if (data.empty()) return;  // an empty chunk would terminate the stream
  HttpServer* server = server_;
  const uint64_t conn_id = conn_id_;
  const uint64_t seq = request_seq_;
  loop_->Post([server, conn_id, seq, data = std::move(data)]() mutable {
    server->CompleteWriteChunk(conn_id, seq, std::move(data));
  });
}

void ResponseWriter::EndChunked() {
  if (!begun_.load() || finished_.exchange(true)) {
    RPT_LOG(Warning) << "ResponseWriter::EndChunked outside chunked response";
    return;
  }
  HttpServer* server = server_;
  const uint64_t conn_id = conn_id_;
  const uint64_t seq = request_seq_;
  loop_->Post([server, conn_id, seq] {
    server->CompleteEndChunked(conn_id, seq);
  });
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

struct HttpServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  HttpParser parser;
  std::string in;         // bytes received but not yet fed to the parser
  std::string out;        // serialized response bytes awaiting send
  size_t out_offset = 0;  // sent prefix of `out`
  uint64_t request_seq = 0;  // increments per dispatched request
  bool busy = false;          // a request is dispatched, response pending
  bool streaming = false;     // chunked response open
  bool keep_alive = true;     // current request wants keep-alive
  bool close_after_flush = false;
  bool want_write = false;    // EPOLLOUT currently armed
  bool read_paused = false;   // stopped reading: in/out buffer over cap
  bool peer_eof = false;      // read side saw EOF
  std::string endpoint = "other";  // metrics label for the current request

  explicit Connection(HttpParserLimits limits) : parser(limits) {}
};

struct HttpServer::Metrics {
  obs::Gauge* connections;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  // (endpoint, code) -> counter, cached so the per-response path does one
  // local map lookup instead of a registry lock + label render.
  std::map<std::pair<std::string, int>, obs::Counter*> requests;

  Metrics() {
    auto& reg = obs::GlobalMetrics();
    connections = reg.GetGauge("rpt_http_connections", {},
                               "Currently open HTTP connections");
    bytes_in = reg.GetCounter("rpt_http_bytes_in_total", {},
                              "Bytes received on HTTP connections");
    bytes_out = reg.GetCounter("rpt_http_bytes_out_total", {},
                               "Bytes sent on HTTP connections");
  }
};

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)),
      loop_(std::make_shared<EventLoop>()),
      metrics_(new Metrics()) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string method, std::string path,
                        HttpHandler handler) {
  RPT_CHECK(!started_.load()) << "Handle() must precede Start()";
  handlers_[std::move(path)][std::move(method)] = std::move(handler);
}

Status HttpServer::Start() {
  RPT_CHECK(!started_.load()) << "HttpServer started twice";
  Status status = loop_->Init();
  if (!status.ok()) return status;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  RPT_CHECK(::getsockname(listen_fd_,
                          reinterpret_cast<struct sockaddr*>(&addr),
                          &addr_len) == 0);
  port_ = ntohs(addr.sin_port);

  started_.store(true);
  loop_thread_ = std::thread([this] {
    // Listener registration happens on the loop thread: Add() is
    // loop-thread-only and nothing dispatches before Run().
    loop_->Add(listen_fd_, EPOLLIN | EPOLLET,
               [this](uint32_t events) { OnAccept(events); });
    loop_->Run();
  });
  return Status::Ok();
}

void HttpServer::Stop() {
  std::call_once(stop_once_, [this] {
    if (!started_.load()) {
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      return;
    }
    loop_->Post([this] {
      // Close everything on the loop thread, then stop the loop.
      if (listen_fd_ >= 0) {
        loop_->Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      std::vector<uint64_t> ids;
      ids.reserve(connections_.size());
      for (const auto& [id, conn] : connections_) ids.push_back(id);
      for (uint64_t id : ids) CloseConnection(id);
      loop_->Stop();
    });
    if (loop_thread_.joinable()) loop_thread_.join();
  });
}

void HttpServer::OnAccept(uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) return;
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      RPT_LOG(Warning) << "accept4: " << std::strerror(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);  // shed load: accept and drop, keeps the backlog moving
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.limits);
    conn->id = id;
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.emplace(id, std::move(conn));
    metrics_->connections->Add(1);
    loop_->Add(fd, EPOLLIN | EPOLLET,
               [this, id](uint32_t ev) { OnConnectionEvent(id, ev); });
    // The socket may already hold bytes sent before registration.
    HandleReadable(raw);
  }
}

void HttpServer::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConnection(conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushOut(conn);
    if (connections_.find(conn_id) == connections_.end()) return;
  }
  if ((events & EPOLLIN) != 0 && !conn->read_paused) {
    HandleReadable(conn);
  }
}

void HttpServer::HandleReadable(Connection* conn) {
  const uint64_t conn_id = conn->id;
  char buf[kReadChunk];
  while (!conn->read_paused) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_->bytes_in->Increment(static_cast<uint64_t>(n));
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() >= options_.max_in_buffer) {
        // Backpressure: stop reading until the parser catches up. Bytes
        // stay in the kernel buffer; TCP flow control pushes back further.
        conn->read_paused = true;
      }
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  ProcessInput(conn);
  if (connections_.find(conn_id) == connections_.end()) return;
  if (conn->peer_eof && !conn->busy && conn->out_offset >= conn->out.size()) {
    // Peer finished sending, nothing pending either way: done.
    CloseConnection(conn_id);
  }
}

void HttpServer::ProcessInput(Connection* conn) {
  const uint64_t conn_id = conn->id;
  // One request at a time per connection: while a response is pending the
  // remaining pipelined bytes simply wait in `in`.
  while (!conn->busy && !conn->close_after_flush && !conn->in.empty()) {
    const size_t consumed = conn->parser.Feed(conn->in);
    conn->in.erase(0, consumed);
    if (conn->parser.failed()) {
      const int code = conn->parser.error_status();
      RPT_LOG(Warning) << "http parse error (" << code
                       << "): " << conn->parser.error_reason();
      CountRequest("other", code);
      SendSimple(conn, code, conn->parser.error_reason() + "\n",
                 /*close_after=*/true);
      return;
    }
    if (!conn->parser.done()) break;  // need more bytes
    HttpRequest request = conn->parser.TakeRequest();
    DispatchRequest(conn, request);
    if (connections_.find(conn_id) == connections_.end()) return;
  }
  if (conn->read_paused && !conn->busy &&
      conn->in.size() < options_.max_in_buffer &&
      conn->out.size() - conn->out_offset < options_.max_out_buffer) {
    TryResumeRead(conn);
  }
}

void HttpServer::DispatchRequest(Connection* conn, const HttpRequest& request) {
  conn->busy = true;
  conn->streaming = false;
  conn->keep_alive = request.KeepAlive();
  ++conn->request_seq;

  const auto path_it = handlers_.find(request.path);
  if (path_it == handlers_.end()) {
    conn->endpoint = "other";
    CountRequest("other", 404);
    // Clear busy before SendSimple: its FlushOut may close (and free) the
    // connection, and a set busy flag would defer the close-after-flush.
    conn->busy = false;
    SendSimple(conn, 404, "not found\n", /*close_after=*/!conn->keep_alive);
    return;
  }
  conn->endpoint = request.path;
  const auto method_it = path_it->second.find(request.method);
  if (method_it == path_it->second.end()) {
    CountRequest(conn->endpoint, 405);
    conn->busy = false;  // same close-ordering contract as the 404 path
    SendSimple(conn, 405, "method not allowed\n",
               /*close_after=*/!conn->keep_alive);
    return;
  }
  auto writer = std::shared_ptr<ResponseWriter>(
      new ResponseWriter(this, loop_, conn->id, conn->request_seq));
  method_it->second(request, writer);
  // The handler may have completed inline via Post; those closures run in
  // this same loop iteration's RunPosted() pass, right after fd dispatch.
}

void HttpServer::FinishRequest(Connection* conn) {
  conn->busy = false;
  conn->streaming = false;
  if (!conn->keep_alive) conn->close_after_flush = true;
  // FlushOut may close (and free) the connection; snapshot the id first.
  const uint64_t conn_id = conn->id;
  FlushOut(conn);
  if (connections_.find(conn_id) == connections_.end()) return;
  // Serve the next pipelined request (or resume a paused read).
  ProcessInput(conn);
  if (connections_.find(conn_id) == connections_.end()) return;
  if (conn->peer_eof && !conn->busy && conn->out_offset >= conn->out.size()) {
    CloseConnection(conn_id);
  }
}

void HttpServer::SendSimple(Connection* conn, int code, const std::string& body,
                            bool close_after) {
  if (close_after) conn->keep_alive = false;
  QueueResponseHead(conn, code, "text/plain; charset=utf-8",
                    /*chunked=*/false, body.size());
  conn->out.append(body);
  if (close_after) conn->close_after_flush = true;
  FlushOut(conn);
}

void HttpServer::QueueResponseHead(Connection* conn, int code,
                                   const std::string& content_type,
                                   bool chunked, size_t content_length) {
  std::string head;
  head.reserve(160 + content_type.size());
  head.append("HTTP/1.1 ");
  head.append(std::to_string(code));
  head.append(" ");
  head.append(HttpStatusText(code));
  head.append("\r\nContent-Type: ");
  head.append(content_type);
  if (chunked) {
    head.append("\r\nTransfer-Encoding: chunked");
  } else {
    head.append("\r\nContent-Length: ");
    head.append(std::to_string(content_length));
  }
  head.append(conn->keep_alive && !conn->close_after_flush
                  ? "\r\nConnection: keep-alive"
                  : "\r\nConnection: close");
  head.append("\r\n\r\n");
  conn->out.append(head);
}

void HttpServer::FlushOut(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      metrics_->bytes_out->Increment(static_cast<uint64_t>(n));
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_->Modify(conn->fd, EPOLLIN | EPOLLOUT | EPOLLET);
      }
      // A response backlog over the cap pauses reading: a peer that sends
      // but never reads cannot grow `out` without bound.
      if (conn->out.size() - conn->out_offset >= options_.max_out_buffer) {
        conn->read_paused = true;
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  // Fully flushed.
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    loop_->Modify(conn->fd, EPOLLIN | EPOLLET);
  }
  if (conn->close_after_flush && !conn->busy) {
    CloseConnection(conn_id);
    return;
  }
  if (conn->read_paused && conn->in.size() < options_.max_in_buffer) {
    TryResumeRead(conn);
  }
}

void HttpServer::TryResumeRead(Connection* conn) {
  conn->read_paused = false;
  // We stopped reading voluntarily (no EAGAIN), so no new edge is coming
  // for the bytes already queued in the kernel: read now.
  HandleReadable(conn);
}

void HttpServer::CloseConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  loop_->Remove(conn->fd);
  ::close(conn->fd);
  metrics_->connections->Add(-1);
  connections_.erase(it);
}

void HttpServer::CountRequest(const std::string& endpoint, int code) {
  auto key = std::make_pair(endpoint, code);
  auto it = metrics_->requests.find(key);
  if (it == metrics_->requests.end()) {
    obs::Counter* counter = obs::GlobalMetrics().GetCounter(
        "rpt_http_requests_total",
        {{"endpoint", endpoint}, {"code", std::to_string(code)}},
        "HTTP requests served, by endpoint and status code");
    it = metrics_->requests.emplace(std::move(key), counter).first;
  }
  it->second->Increment();
}

// ---------------------------------------------------------------------------
// Completion entry points (loop thread, via ResponseWriter posts)
// ---------------------------------------------------------------------------

HttpServer::Connection* HttpServer::LiveConnectionFor(uint64_t conn_id,
                                                      uint64_t seq) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return nullptr;  // peer went away: drop
  Connection* conn = it->second.get();
  // A completion for a previous request on this connection (the writer's
  // own flags normally prevent this) must not corrupt the current one.
  if (!conn->busy || conn->request_seq != seq) return nullptr;
  return conn;
}

void HttpServer::CompleteSend(uint64_t conn_id, uint64_t seq,
                              HttpResponse response) {
  Connection* conn = LiveConnectionFor(conn_id, seq);
  if (conn == nullptr) return;
  CountRequest(conn->endpoint, response.code);
  QueueResponseHead(conn, response.code, response.content_type,
                    /*chunked=*/false, response.body.size());
  conn->out.append(response.body);
  FinishRequest(conn);
}

void HttpServer::CompleteBeginChunked(uint64_t conn_id, uint64_t seq, int code,
                                      std::string content_type) {
  Connection* conn = LiveConnectionFor(conn_id, seq);
  if (conn == nullptr) return;
  conn->streaming = true;
  CountRequest(conn->endpoint, code);
  QueueResponseHead(conn, code, content_type, /*chunked=*/true, 0);
  FlushOut(conn);
}

void HttpServer::CompleteWriteChunk(uint64_t conn_id, uint64_t seq,
                                    std::string data) {
  Connection* conn = LiveConnectionFor(conn_id, seq);
  if (conn == nullptr || !conn->streaming) return;
  conn->out.append(ChunkFrame(data));
  FlushOut(conn);
}

void HttpServer::CompleteEndChunked(uint64_t conn_id, uint64_t seq) {
  Connection* conn = LiveConnectionFor(conn_id, seq);
  if (conn == nullptr || !conn->streaming) return;
  conn->out.append("0\r\n\r\n");
  FinishRequest(conn);
}

}  // namespace net
}  // namespace rpt
