// HttpServer: a dependency-free HTTP/1.1 front-end on one epoll loop.
//
// One EventLoop thread owns everything: the listening socket (accepted with
// accept4 O_NONBLOCK), a per-connection state machine (incremental
// HttpParser, bounded input buffer, bounded pending-write buffer,
// keep-alive, pipelining), and handler dispatch by exact (method, path).
// Handlers never block the loop: they receive a shared ResponseWriter and
// may complete the response later from any thread — every writer method
// posts through the loop's eventfd wakeup, which is exactly the bridge the
// serving layer's async completion callbacks (ServeCallback, serve/shard.h)
// need.
//
// Per-connection discipline:
//  * Requests on one connection are handled strictly in order: the next
//    pipelined request is not dispatched until the current response has
//    been written (or begun streaming and finished). Responses therefore
//    always leave in request order, which is all HTTP/1.1 pipelining
//    requires.
//  * Both buffers are bounded. Input beyond `max_in_buffer` pauses reading
//    until the backlog drains; a response backlog beyond `max_out_buffer`
//    also pauses reading (a slow or absent reader cannot balloon memory).
//    Parser limits turn oversized messages into 431/413, malformed ones
//    into 400; all parse errors answer and then close the connection,
//    since the byte stream is no longer trustworthy.
//  * Responses are either whole (Send: Content-Length framing) or streamed
//    (BeginChunked / WriteChunk / EndChunked: Transfer-Encoding chunked) —
//    the streaming path is how long generations surface partial results.
//
// Observability: the server feeds four registry families —
// `rpt_http_connections` (gauge, currently open), `rpt_http_requests_total
// {endpoint,code}` (endpoint is the registered path, or "other" for
// unmatched targets, keeping label cardinality bounded), and
// `rpt_http_bytes_in_total` / `rpt_http_bytes_out_total`.

#ifndef RPT_NET_HTTP_SERVER_H_
#define RPT_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/event_loop.h"
#include "net/http_parser.h"
#include "util/status.h"

namespace rpt {
namespace net {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port (see port())
  HttpParserLimits limits;
  size_t max_connections = 4096;   // beyond: accept + close immediately
  size_t max_in_buffer = 64 << 10;   // unparsed input per connection
  size_t max_out_buffer = 8 << 20;   // pending response bytes per connection
};

/// A complete (non-streamed) response.
struct HttpResponse {
  int code = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Reason phrase for a status code ("OK", "Bad Request", ...).
const char* HttpStatusText(int code);

class HttpServer;

/// Completion handle for one in-flight request. Exactly one of
/// {Send} or {BeginChunked, WriteChunk..., EndChunked} completes it.
/// Thread-safe: every method posts to the owning loop, so collector-thread
/// callbacks and loop-thread handlers use the same calls. Calls against a
/// connection the peer has meanwhile closed are silently dropped.
class ResponseWriter {
 public:
  void Send(HttpResponse response);
  void BeginChunked(int code, std::string content_type);
  void WriteChunk(std::string data);
  void EndChunked();

 private:
  friend class HttpServer;
  ResponseWriter(HttpServer* server, std::shared_ptr<EventLoop> loop,
                 uint64_t conn_id, uint64_t request_seq)
      : server_(server),
        loop_(std::move(loop)),
        conn_id_(conn_id),
        request_seq_(request_seq) {}

  HttpServer* server_;
  // Shared so a writer held by a collector callback keeps the loop (and its
  // drop-after-stop Post semantics) alive even mid-teardown.
  std::shared_ptr<EventLoop> loop_;
  uint64_t conn_id_;
  uint64_t request_seq_;
  std::atomic<bool> begun_{false};     // Send or BeginChunked happened
  std::atomic<bool> finished_{false};  // Send or EndChunked happened
};

/// `request` is only valid for the duration of the call — copy what the
/// completion needs. The writer may be completed inline or later.
using HttpHandler = std::function<void(const HttpRequest& request,
                                       std::shared_ptr<ResponseWriter> writer)>;

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  // implicit Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match handler. All registrations must happen
  /// before Start(). A matched path with a different method answers 405;
  /// an unmatched path 404.
  void Handle(std::string method, std::string path, HttpHandler handler);

  /// Binds host:port, listens, and spawns the loop thread. On success
  /// port() holds the actual port (resolves port 0).
  Status Start();

  /// Closes the listener and every connection, stops the loop, joins its
  /// thread. In-flight ResponseWriters outlive this safely: their posts
  /// are dropped once the loop has stopped. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  const HttpServerOptions& options() const { return options_; }

 private:
  friend class ResponseWriter;
  struct Connection;
  struct Metrics;

  // ---- loop-thread only ----
  void OnAccept(uint32_t events);
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  void HandleReadable(Connection* conn);
  void ProcessInput(Connection* conn);
  void DispatchRequest(Connection* conn, const HttpRequest& request);
  void FinishRequest(Connection* conn);  // response fully queued
  void SendSimple(Connection* conn, int code, const std::string& body,
                  bool close_after);
  void QueueResponseHead(Connection* conn, int code,
                         const std::string& content_type, bool chunked,
                         size_t content_length);
  void FlushOut(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void TryResumeRead(Connection* conn);
  void CountRequest(const std::string& endpoint, int code);

  // ---- ResponseWriter entry points (called from posted closures) ----
  void CompleteSend(uint64_t conn_id, uint64_t seq, HttpResponse response);
  void CompleteBeginChunked(uint64_t conn_id, uint64_t seq, int code,
                            std::string content_type);
  void CompleteWriteChunk(uint64_t conn_id, uint64_t seq, std::string data);
  void CompleteEndChunked(uint64_t conn_id, uint64_t seq);
  Connection* LiveConnectionFor(uint64_t conn_id, uint64_t seq);

  HttpServerOptions options_;
  std::shared_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::atomic<bool> started_{false};
  std::once_flag stop_once_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  // path -> method -> handler (exact match; loop thread after Start).
  std::map<std::string, std::map<std::string, HttpHandler>> handlers_;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  std::unique_ptr<Metrics> metrics_;
};

}  // namespace net
}  // namespace rpt

#endif  // RPT_NET_HTTP_SERVER_H_
