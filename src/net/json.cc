#include "net/json.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace rpt {
namespace net {

namespace {

/// Appends `cp` to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Cursor over the input with one-line error reporting.
struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) error = why;
    return false;
  }
  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos + 4 > text.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos >= text.size()) return Fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return Fail("dangling escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape character");
      }
    }
  }

  /// Number / true / false / null, returned as its literal text (null as
  /// ""). Rejects objects and arrays — the flat protocol never nests.
  bool ParseScalar(std::string* out) {
    SkipSpace();
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '{' || text[pos] == '[')) {
      return Fail("nested values are not supported");
    }
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ' ' && text[pos] != '\t' && text[pos] != '\n' &&
           text[pos] != '\r') {
      ++pos;
    }
    if (pos == start) return Fail("expected a value");
    std::string_view token = text.substr(start, pos - start);
    if (token == "null") {
      out->clear();
      return true;
    }
    if (token == "true" || token == "false") {
      out->assign(token);
      return true;
    }
    // Validate as a JSON number with strtod over a bounded copy.
    const std::string copy(token);
    char* end = nullptr;
    (void)std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) {
      return Fail("unquoted value is not a number/bool/null");
    }
    out->assign(token);
    return true;
  }
};

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

bool JsonParseFlatObject(std::string_view text,
                         std::map<std::string, std::string>* fields,
                         std::string* error) {
  fields->clear();
  Parser p{text, 0, std::string()};
  const auto fail = [&](const std::string& fallback) {
    if (error != nullptr) *error = p.error.empty() ? fallback : p.error;
    return false;
  };
  if (!p.Consume('{')) return fail("expected '{'");
  if (!p.Consume('}')) {
    while (true) {
      std::string key;
      if (!p.ParseString(&key)) return fail("expected a field name");
      if (!p.Consume(':')) return fail("expected ':' after field name");
      p.SkipSpace();
      std::string value;
      const bool is_string = p.pos < p.text.size() && p.text[p.pos] == '"';
      if (is_string ? !p.ParseString(&value) : !p.ParseScalar(&value)) {
        return fail("bad value for field '" + key + "'");
      }
      (*fields)[key] = std::move(value);
      if (p.Consume(',')) continue;
      if (p.Consume('}')) break;
      return fail("expected ',' or '}'");
    }
  }
  if (!p.AtEnd()) return fail("trailing characters after object");
  return true;
}

}  // namespace net
}  // namespace rpt
