#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace rpt {
namespace net {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(wake): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  RPT_CHECK(epoll_fd_ >= 0) << "EventLoop::Init was not called";
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  RPT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(ADD " << fd << "): " << std::strerror(errno);
  callbacks_[fd] = std::make_shared<FdCallback>(std::move(callback));
}

void EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  RPT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl(MOD " << fd << "): " << std::strerror(errno);
}

void EventLoop::Remove(int fd) {
  // Ignore ENOENT etc. — a fd being torn down twice is harmless here.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (stopped_.load(std::memory_order_acquire)) return;  // dropped
    posted_.push_back(std::move(fn));
  }
  // A wake that races Stop() is harmless: the eventfd stays open for the
  // lifetime of the EventLoop object, and an unread count is just ignored.
  const uint64_t one = 1;
  ssize_t written;
  do {
    written = ::write(wake_fd_, &one, sizeof(one));
  } while (written < 0 && errno == EINTR);
}

void EventLoop::DrainWake() {
  uint64_t value = 0;
  // Edge-triggered: read until EAGAIN so the next write produces an edge.
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  RPT_CHECK(epoll_fd_ >= 0) << "EventLoop::Init was not called";
  running_.store(true, std::memory_order_release);
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      RPT_CHECK(false) << "epoll_wait: " << std::strerror(errno);
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      // Look up per event (not per batch): an earlier callback in this
      // batch may have removed this fd.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      const std::shared_ptr<FdCallback> callback = it->second;
      (*callback)(events[i].events);
    }
    // Posted closures run after fd dispatch so a completion posted by a
    // collector thread sees fully up-to-date connection state.
    RunPosted();
  }
  // Sticky stop: once Run() exits nothing will drain `posted_`, so further
  // posts are dropped at the door (and the backlog is cleared) rather than
  // accumulating closures that will never run.
  std::vector<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stopped_.store(true, std::memory_order_release);
    leftovers.swap(posted_);
  }
  leftovers.clear();
}

void EventLoop::Stop() {
  running_.store(false, std::memory_order_release);
  const uint64_t one = 1;
  ssize_t written;
  do {
    written = ::write(wake_fd_, &one, sizeof(one));
  } while (written < 0 && errno == EINTR);
}

}  // namespace net
}  // namespace rpt
