// EventLoop: a single-threaded, edge-triggered epoll reactor.
//
// One thread calls Run(), which blocks in epoll_wait and dispatches ready
// file descriptors to their registered callbacks. Everything the loop owns
// — fd registrations, connection state in the layers above — is mutated
// only on that thread; the single cross-thread entry point is Post(),
// which enqueues a closure under a mutex and wakes the loop through an
// eventfd. That is the bridge the serving layer's completion callbacks use:
// a ServeShard collector thread finishes a request, Post()s the response,
// and the loop picks it up on its next wakeup — the loop itself never
// blocks on an inference future.
//
// Edge-triggered discipline: callbacks receive the ready events and must
// drain the fd (read/accept/write until EAGAIN) before returning, because
// the next epoll_wait only reports new edges. Registration is keyed by fd;
// a callback may add or remove fds (including its own) during dispatch —
// removal is checked against a generation map so a stale ready event for a
// just-closed fd is ignored, never dispatched to a dead connection.

#ifndef RPT_NET_EVENT_LOOP_H_
#define RPT_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace rpt {
namespace net {

class EventLoop {
 public:
  /// Called with the epoll event mask (EPOLLIN / EPOLLOUT / EPOLLHUP...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and wake eventfd. Must succeed before any
  /// other call; failure reports the errno.
  Status Init();

  /// Registers `fd` with the given epoll event mask (the caller includes
  /// EPOLLET; the loop does not second-guess the mask). Loop thread only.
  void Add(int fd, uint32_t events, FdCallback callback);

  /// Re-arms `fd` with a new mask. Loop thread only.
  void Modify(int fd, uint32_t events);

  /// Deregisters `fd` (does not close it). Safe to call from inside the
  /// fd's own callback. Loop thread only.
  void Remove(int fd);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. Safe from
  /// any thread, including the loop thread itself and threads racing
  /// Stop(); after the loop has stopped, pending and future posts are
  /// dropped (their captures are destroyed, never run).
  void Post(std::function<void()> fn);

  /// Runs until Stop(). Dispatches fd callbacks and posted closures.
  void Run();

  /// Signals Run() to return after the current iteration. Any thread.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void DrainWake();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};  // sticky: set once Run() has exited

  // fd -> callback. shared_ptr so a callback that removes itself (or
  // another fd) mid-dispatch cannot free the std::function currently
  // executing.
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace net
}  // namespace rpt

#endif  // RPT_NET_EVENT_LOOP_H_
