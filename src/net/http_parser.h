// Incremental HTTP/1.1 request parser for the epoll front-end.
//
// The event loop reads whatever the socket has and feeds it here byte by
// byte if that is all that arrived; the parser accumulates exactly one
// message worth of state and stops consuming at the message boundary, so
// pipelined requests stay in the connection's input buffer for the next
// round. No allocation proportional to anything but the current message,
// and every limit is enforced *while* reading — an attacker cannot make the
// server buffer an unbounded request line, header block, or body.
//
// Error policy (RFC 9112 §3, RFC 6585): a malformed request line, header,
// or Content-Length is 400; a body larger than the configured cap is 413; a
// request line or header block over its cap is 431. Chunked (or any)
// Transfer-Encoding on requests is rejected with 400 rather than guessed
// at — combined with the single Content-Length rule this closes the classic
// request-smuggling ambiguities. After an error the parser stops consuming;
// the connection answers with the matching status and closes.

#ifndef RPT_NET_HTTP_PARSER_H_
#define RPT_NET_HTTP_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rpt {
namespace net {

/// Per-message input caps, enforced incrementally during parsing.
struct HttpParserLimits {
  size_t max_request_line = 8192;    // method + target + version
  size_t max_header_bytes = 32768;   // all header lines together
  size_t max_headers = 128;          // header count
  size_t max_body_bytes = 4 << 20;   // Content-Length cap
};

/// One parsed request. Header names are lowercased (field names are
/// case-insensitive); values keep their bytes with surrounding whitespace
/// trimmed.
struct HttpRequest {
  std::string method;   // verbatim, e.g. "POST"
  std::string target;   // raw request-target, e.g. "/v1/clean?stream=1"
  std::string path;     // target up to '?'
  std::string query;    // after '?', "" when absent
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (lowercase) name, nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;

  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  /// `Connection: close` / `keep-alive` overrides either way.
  bool KeepAlive() const;
};

class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {});

  /// Consumes bytes from `data` until the current message is complete, an
  /// error is hit, or `data` runs out; returns the number of bytes
  /// consumed. The caller re-feeds the remainder after TakeRequest() —
  /// that is how pipelining works.
  size_t Feed(std::string_view data);

  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }

  /// 400, 413, or 431; 0 unless failed().
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Moves out the completed request and resets to parse the next message
  /// on the same connection. Only valid when done().
  HttpRequest TakeRequest();

  /// Back to a fresh message (also clears an error).
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  void FailWith(int status, std::string reason);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  bool FinishHeaders();  // after the blank line; decides body vs complete

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string line_buf_;       // current (incomplete) request/header line
  size_t header_bytes_ = 0;    // cumulative header-line bytes this message
  uint64_t content_length_ = 0;
  bool saw_content_length_ = false;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

}  // namespace net
}  // namespace rpt

#endif  // RPT_NET_HTTP_PARSER_H_
