#include "net/http_parser.h"

#include <algorithm>

#include "util/string_util.h"

namespace rpt {
namespace net {

namespace {

/// Strips one trailing '\r' (lines are split on '\n'; both CRLF and bare LF
/// terminators are accepted, as curl/browsers always send CRLF but hand-run
/// netcat sessions often do not).
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

bool IsTokenChar(char c) {
  // RFC 9110 token characters (the ones that may appear in a method or
  // header name).
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("connection");
  if (connection != nullptr) {
    const std::string value = ToLower(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version_minor >= 1;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::FailWith(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

size_t HttpParser::Feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    const std::string_view rest = data.substr(consumed);
    if (state_ == State::kBody) {
      const uint64_t missing = content_length_ - request_.body.size();
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(missing, rest.size()));
      request_.body.append(rest.data(), take);
      consumed += take;
      if (request_.body.size() == content_length_) state_ = State::kComplete;
      continue;
    }
    // Line-oriented phases: gather bytes until '\n', enforcing the phase's
    // size cap as bytes arrive so a lineless flood cannot grow the buffer.
    const size_t newline = rest.find('\n');
    const size_t take = newline == std::string_view::npos ? rest.size()
                                                          : newline + 1;
    line_buf_.append(rest.data(), take);
    consumed += take;
    const size_t cap = state_ == State::kRequestLine
                           ? limits_.max_request_line
                           : limits_.max_header_bytes - header_bytes_;
    if (line_buf_.size() > cap) {
      FailWith(431, state_ == State::kRequestLine
                        ? "request line exceeds limit"
                        : "header block exceeds limit");
      break;
    }
    if (newline == std::string_view::npos) break;  // need more bytes
    const std::string line(StripCr(
        std::string_view(line_buf_).substr(0, line_buf_.size() - 1)));
    if (state_ == State::kRequestLine) {
      // Leading blank lines before a request line are tolerated (RFC 9112
      // §2.2 allows a lenient server to skip them).
      if (line.empty()) {
        line_buf_.clear();
        continue;
      }
      if (!ParseRequestLine(line)) break;
      state_ = State::kHeaders;
    } else {  // kHeaders
      header_bytes_ += line_buf_.size();
      if (line.empty()) {
        if (!FinishHeaders()) break;
      } else if (!ParseHeaderLine(line)) {
        break;
      }
    }
    line_buf_.clear();
  }
  return consumed;
}

bool HttpParser::ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    FailWith(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    FailWith(400, "malformed method");
    return false;
  }
  if (target.empty()) {
    FailWith(400, "empty request target");
    return false;
  }
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      (version[7] != '0' && version[7] != '1')) {
    FailWith(400, "unsupported HTTP version");
    return false;
  }
  request_.method.assign(method);
  request_.target.assign(target);
  request_.version_minor = version[7] - '0';
  const size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    request_.path.assign(target);
    request_.query.clear();
  } else {
    request_.path.assign(target.substr(0, qmark));
    request_.query.assign(target.substr(qmark + 1));
  }
  return true;
}

bool HttpParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    FailWith(431, "too many header fields");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    FailWith(400, "header line without ':'");
    return false;
  }
  const std::string_view raw_name = line.substr(0, colon);
  // RFC 9112 §5.1: no whitespace between field name and colon.
  if (!IsToken(raw_name)) {
    FailWith(400, "malformed header field name");
    return false;
  }
  request_.headers.emplace_back(ToLower(raw_name),
                                Trim(line.substr(colon + 1)));
  return true;
}

bool HttpParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // Chunked request bodies are deliberately unsupported; rejecting every
    // Transfer-Encoding also removes the CL-vs-TE smuggling ambiguity.
    FailWith(400, "Transfer-Encoding request bodies are not supported");
    return false;
  }
  for (const auto& [name, value] : request_.headers) {
    if (name != "content-length") continue;
    // A Content-Length must be pure digits; a list or repeated header must
    // agree with itself (RFC 9112 §6.3), else the framing is ambiguous.
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(),
                     [](char c) { return c >= '0' && c <= '9'; }) ||
        value.size() > 18) {
      FailWith(400, "malformed Content-Length");
      return false;
    }
    const uint64_t parsed = std::stoull(value);
    if (saw_content_length_ && parsed != content_length_) {
      FailWith(400, "conflicting Content-Length headers");
      return false;
    }
    saw_content_length_ = true;
    content_length_ = parsed;
  }
  if (content_length_ > limits_.max_body_bytes) {
    FailWith(413, "request body exceeds limit");
    return false;
  }
  state_ = content_length_ == 0 ? State::kComplete : State::kBody;
  if (state_ == State::kBody) request_.body.reserve(content_length_);
  return true;
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  Reset();
  return out;
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  line_buf_.clear();
  header_bytes_ = 0;
  content_length_ = 0;
  saw_content_length_ = false;
  request_ = HttpRequest();
  error_status_ = 0;
  error_reason_.clear();
}

}  // namespace net
}  // namespace rpt
