// RptHttpService: the HTTP face of a RoutedServer.
//
// Registers on an HttpServer:
//   POST /v1/<route>   one endpoint per configured route ("clean", "match",
//                      "extract", ...). The body is line-oriented JSON: each
//                      line one flat object {"input": "..."}; each response
//                      line mirrors it — {"output": ..., "cache_hit": ...,
//                      "latency_ms": ..., "batch_size": ...} on success,
//                      {"error": "<CodeName>", "message": ...} on a serve
//                      failure. Lines come back in request order.
//   GET  /metrics      Prometheus text exposition of the process registry.
//   GET  /healthz      "ok\n" while the process is up.
//
// Framing: a single-line body answers with a normal Content-Length response
// whose code maps the serve status (200 / 400 / 404 / 503 / 504). A
// multi-line body — or any body with ?stream=1 — streams as chunked
// transfer-encoding: headers go out immediately and each line is flushed as
// a chunk the moment it (and every line before it) completes, so a client
// reading a long generation sees partial results while later lines are
// still in the model. Per-line failures inside a stream are reported as
// in-band {"error": ...} lines (the 200 has already left).
//
// A body that is not valid line-JSON anywhere answers 400 before anything
// is submitted — requests never partially enter the serving layer on a
// malformed body.
//
// Concurrency: handlers run on the HTTP loop thread; completions arrive
// either inline (cache hits, rejections — see serve/shard.h ServeCallback)
// or on collector threads. Per-request state lives in a mutex-guarded block
// shared by the line callbacks; the ResponseWriter they drive is itself
// thread-safe, so no completion ever blocks on the loop.

#ifndef RPT_NET_SERVICE_H_
#define RPT_NET_SERVICE_H_

#include <chrono>
#include <string>

#include "net/http_server.h"
#include "serve/routed_server.h"

namespace rpt {
namespace net {

/// HTTP status for a serve-layer status code (Ok → 200, kNotFound → 404,
/// kInvalidArgument → 400, kUnavailable → 503, kDeadlineExceeded → 504,
/// anything else → 500).
int HttpCodeForStatus(StatusCode code);

/// Renders one response line (no trailing newline) for `response`.
std::string RenderResponseLine(const ServeResponse& response);

/// True when `query` contains `key=1` or a bare `key` ("stream=1").
bool QueryFlag(std::string_view query, std::string_view key);

class RptHttpService {
 public:
  /// `server` must outlive the HttpServer this registers on (requests in
  /// flight hold completion callbacks into it). `default_timeout` bounds
  /// each submitted line; a request may lower it with ?timeout_ms=<n>.
  explicit RptHttpService(RoutedServer* server,
                          std::chrono::milliseconds default_timeout =
                              std::chrono::milliseconds::max());

  /// Registers /healthz, /metrics, and POST /v1/<route> for every route.
  /// Call before HttpServer::Start().
  void Register(HttpServer* http);

 private:
  void HandleSubmit(const std::string& route, const HttpRequest& request,
                    std::shared_ptr<ResponseWriter> writer);

  RoutedServer* server_;
  std::chrono::milliseconds default_timeout_;
};

}  // namespace net
}  // namespace rpt

#endif  // RPT_NET_SERVICE_H_
