#include "corpus/dedup.h"

#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace rpt {
namespace corpus {

DedupResult DedupCorpus(const std::vector<std::string>& docs,
                        const DedupConfig& config) {
  RPT_CHECK_GE(config.max_hamming, 0);
  DedupResult result;
  if (docs.empty()) return result;
  std::unordered_set<std::string> exact_keys;
  exact_keys.reserve(docs.size());
  SimHashIndex index(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string key = NormalizeForDedup(docs[i], config.normalize);
    if (!exact_keys.insert(key).second) {
      ++result.exact_duplicates;
      continue;
    }
    if (config.max_hamming > 0) {
      const SimHash128 signature =
          ComputeSimHash(key, config.shingle_size);
      if (index.FindNearest(signature, config.max_hamming).has_value()) {
        ++result.near_duplicates;
        continue;
      }
      index.Add(signature, std::move(key));
    }
    result.kept.push_back(i);
  }
  return result;
}

}  // namespace corpus
}  // namespace rpt
