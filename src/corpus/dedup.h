// Corpus-scale near-duplicate removal for pretraining data.
//
// RPT's dirty-pretraining ablation (PAPER.md §2.2 O2, bench/dirty_pretrain)
// cares about what the model pretrains on: web-scale relational corpora are
// full of rows that repeat verbatim or with trivial surface noise, and a
// model that memorizes the popular duplicates learns less per step. This
// pass reuses the serving layer's dedup machinery (util/simhash.h) offline:
// exact duplicates collapse through normalized-key identity, near
// duplicates through SimHash banding within a Hamming threshold.
//
// Single-threaded, one pass, O(n · bands): each kept document is indexed;
// each candidate is first checked against the exact-key set, then probed
// against the index. First occurrence wins, so output order is input order.

#ifndef RPT_CORPUS_DEDUP_H_
#define RPT_CORPUS_DEDUP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/simhash.h"

namespace rpt {
namespace corpus {

struct DedupConfig {
  /// Canonicalization before keying/hashing (util/simhash.h).
  NormalizeSpec normalize;
  /// Documents within this many signature bits of a kept document are
  /// dropped as near duplicates. 0 keeps only exact (normalized)
  /// deduplication.
  int max_hamming = 3;
  /// Word-shingle width of the signature.
  int shingle_size = 2;
};

struct DedupResult {
  /// Indices into the input corpus of the documents to keep, ascending.
  std::vector<size_t> kept;
  size_t exact_duplicates = 0;
  size_t near_duplicates = 0;

  size_t dropped() const { return exact_duplicates + near_duplicates; }
};

/// Deduplicates `docs` under `config`; see the header comment for
/// semantics. The index spans the whole kept set (no ring eviction), so a
/// duplicate is caught however far it sits from its original.
DedupResult DedupCorpus(const std::vector<std::string>& docs,
                        const DedupConfig& config = {});

}  // namespace corpus
}  // namespace rpt

#endif  // RPT_CORPUS_DEDUP_H_
