#include "baselines/deepmatcher.h"

#include <algorithm>
#include <cmath>

#include "baselines/sim_features.h"
#include "tensor/tensor.h"
#include "util/logging.h"

namespace rpt {

DeepMatcher::DeepMatcher(DeepMatcherConfig config)
    : config_(config), rng_(config.seed) {
  fc1_ = std::make_unique<Linear>(kNumPairFeatures, config_.hidden_dim,
                                  &rng_);
  fc2_ = std::make_unique<Linear>(config_.hidden_dim, 2, &rng_);
}

void DeepMatcher::Train(const std::vector<std::vector<double>>& features,
                        const std::vector<bool>& labels) {
  RPT_CHECK_EQ(features.size(), labels.size());
  RPT_CHECK(!features.empty());
  std::vector<Tensor> params = fc1_->Parameters();
  for (auto& p : fc2_->Parameters()) params.push_back(p);
  Adam opt(params, config_.learning_rate);

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      const int64_t bs = static_cast<int64_t>(end - begin);
      std::vector<float> x(static_cast<size_t>(bs * kNumPairFeatures));
      std::vector<int32_t> y(static_cast<size_t>(bs));
      for (size_t i = begin; i < end; ++i) {
        const auto& f = features[order[i]];
        for (size_t j = 0; j < f.size(); ++j) {
          x[(i - begin) * static_cast<size_t>(kNumPairFeatures) + j] =
              static_cast<float>(f[j]);
        }
        y[i - begin] = labels[order[i]] ? 1 : 0;
      }
      opt.ZeroGrad();
      Tensor input = Tensor::FromVector(std::move(x),
                                        {bs, kNumPairFeatures});
      Tensor hidden = Relu(fc1_->Forward(input));
      Tensor logits = fc2_->Forward(hidden);
      Tensor loss = CrossEntropyLoss(logits, y);
      loss.Backward();
      opt.Step();
    }
  }
}

std::vector<double> DeepMatcher::Predict(
    const std::vector<std::vector<double>>& features) const {
  NoGradGuard no_grad;
  std::vector<double> out;
  out.reserve(features.size());
  const int64_t n = static_cast<int64_t>(features.size());
  std::vector<float> x(static_cast<size_t>(n * kNumPairFeatures));
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t j = 0; j < features[i].size(); ++j) {
      x[i * static_cast<size_t>(kNumPairFeatures) + j] =
          static_cast<float>(features[i][j]);
    }
  }
  Tensor input = Tensor::FromVector(std::move(x), {n, kNumPairFeatures});
  Tensor logits = fc2_->Forward(Relu(fc1_->Forward(input)));
  for (int64_t i = 0; i < n; ++i) {
    const float l0 = logits.at(i * 2);
    const float l1 = logits.at(i * 2 + 1);
    const double mx = std::max(l0, l1);
    const double z = std::exp(l0 - mx) + std::exp(l1 - mx);
    out.push_back(std::exp(l1 - mx) / z);
  }
  return out;
}

BinaryConfusion DeepMatcher::EvaluateInDomain(const ErBenchmark& bench,
                                              double threshold) {
  std::vector<std::vector<double>> features;
  features.reserve(bench.pairs.size());
  for (const auto& pair : bench.pairs) {
    features.push_back(PairFeatures(
        bench.table_a.schema(), bench.table_a.row(pair.a),
        bench.table_b.schema(), bench.table_b.row(pair.b)));
  }
  // Deterministic split.
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng split_rng(config_.seed ^ 0x5517);
  split_rng.Shuffle(&order);
  const size_t train_n = static_cast<size_t>(
      config_.train_fraction * static_cast<double>(order.size()));

  std::vector<std::vector<double>> train_x;
  std::vector<bool> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<bool> test_y;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < train_n) {
      train_x.push_back(features[order[i]]);
      train_y.push_back(bench.pairs[order[i]].match);
    } else {
      test_x.push_back(features[order[i]]);
      test_y.push_back(bench.pairs[order[i]].match);
    }
  }
  Train(train_x, train_y);
  auto scores = Predict(test_x);
  BinaryConfusion confusion;
  for (size_t i = 0; i < test_x.size(); ++i) {
    confusion.Add(scores[i] >= threshold, test_y[i]);
  }
  return confusion;
}

}  // namespace rpt
