#include "baselines/bart_text.h"

namespace rpt {

BartTextBaseline::BartTextBaseline(const CleanerConfig& config,
                                   Vocab vocab) {
  CleanerConfig text_config = config;
  // A text-pretrained model has no notion of columns, token kinds, or
  // [A]/[V] markers: it reads the tuple as a flat sentence with one [M],
  // which *is* its pre-training format (text infilling).
  text_config.use_column_embeddings = false;
  text_config.use_type_embeddings = false;
  text_config.serializer.use_structure_tokens = false;
  cleaner_ = std::make_unique<RptCleaner>(text_config, std::move(vocab));
}

double BartTextBaseline::PretrainOnText(
    const std::vector<std::string>& sentences, int64_t steps) {
  return cleaner_->PretrainOnText(sentences, steps);
}

Value BartTextBaseline::PredictValue(const Schema& schema,
                                     const Tuple& tuple,
                                     int64_t column) const {
  return cleaner_->PredictValue(schema, tuple, column);
}

}  // namespace rpt
