// Similarity feature extraction shared by the non-neural ER baselines
// (ZeroER, DeepMatcher-as-implemented-here, Magellan-style random forest).
//
// Features are schema-agnostic: whole-record similarities over the
// concatenated values plus aggregates over columns the two schemas share
// by name. The vector length is fixed so models can be trained across
// benchmarks with different schemas.

#ifndef RPT_BASELINES_SIM_FEATURES_H_
#define RPT_BASELINES_SIM_FEATURES_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace rpt {

/// Number of features produced by PairFeatures.
constexpr int64_t kNumPairFeatures = 10;

/// Human-readable feature names (size kNumPairFeatures).
const std::vector<std::string>& PairFeatureNames();

/// Fixed-length similarity vector for a tuple pair.
std::vector<double> PairFeatures(const Schema& schema_a, const Tuple& a,
                                 const Schema& schema_b, const Tuple& b);

/// All non-null values joined with spaces.
std::string ConcatTuple(const Tuple& tuple);

}  // namespace rpt

#endif  // RPT_BASELINES_SIM_FEATURES_H_
