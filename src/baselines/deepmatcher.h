// DeepMatcher baseline (Mudgal et al., SIGMOD 2018), as a supervised
// neural matcher over similarity summaries.
//
// The original composes per-attribute RNN summarizers; at this scale an MLP
// over the shared PairFeatures plays the same role in the protocol that
// matters for Table 2: it is trained with *in-domain labels* (hundreds to
// thousands), unlike RPT-E (zero in-domain labels) and ZeroER
// (unsupervised).

#ifndef RPT_BASELINES_DEEPMATCHER_H_
#define RPT_BASELINES_DEEPMATCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/metrics.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "synth/benchmarks.h"
#include "util/rng.h"

namespace rpt {

struct DeepMatcherConfig {
  int64_t hidden_dim = 32;
  int64_t epochs = 60;
  int64_t batch_size = 32;
  float learning_rate = 5e-3f;
  double train_fraction = 0.7;  // in-domain labeled split
  uint64_t seed = 3;
};

class DeepMatcher {
 public:
  explicit DeepMatcher(DeepMatcherConfig config = {});

  /// Supervised training on labeled feature vectors.
  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<bool>& labels);

  /// P(match) per feature vector.
  std::vector<double> Predict(
      const std::vector<std::vector<double>>& features) const;

  /// In-domain protocol: split the benchmark's labeled pairs
  /// train/test, train on the train split, evaluate on the held-out split.
  BinaryConfusion EvaluateInDomain(const ErBenchmark& bench,
                                   double threshold = 0.5);

 private:
  DeepMatcherConfig config_;
  Rng rng_;
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
};

}  // namespace rpt

#endif  // RPT_BASELINES_DEEPMATCHER_H_
