// BART text-only baseline for Table 1.
//
// Architecturally identical to RPT-C (the paper stresses "BART and RPT-C
// have the same architecture"), but pre-trained exclusively on *text*
// (span infilling over a prose corpus), never on serialized tuples —
// so it has word knowledge but no table structure or intra-tuple
// dependency knowledge. At prediction time it reads the same serialized
// tuple RPT-C reads; the [A]/[V] markers and column embeddings are simply
// tokens/parameters it never trained with (configured off), which is
// exactly the "pretrained language model not customized for relational
// data" condition the paper contrasts against.

#ifndef RPT_BASELINES_BART_TEXT_H_
#define RPT_BASELINES_BART_TEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "rpt/cleaner.h"

namespace rpt {

class BartTextBaseline {
 public:
  /// `config` is adapted: structural embeddings are disabled to reflect a
  /// text-only pretrained model.
  BartTextBaseline(const CleanerConfig& config, Vocab vocab);

  /// Span-infilling pre-training on prose.
  double PretrainOnText(const std::vector<std::string>& sentences,
                        int64_t steps);

  /// Reads the serialized tuple and infills the masked cell, exactly like
  /// RptCleaner::PredictValue.
  Value PredictValue(const Schema& schema, const Tuple& tuple,
                     int64_t column) const;

  const RptCleaner& cleaner() const { return *cleaner_; }

 private:
  std::unique_ptr<RptCleaner> cleaner_;
};

}  // namespace rpt

#endif  // RPT_BASELINES_BART_TEXT_H_
