#include "baselines/zeroer.h"

#include <algorithm>
#include <cmath>

#include "baselines/sim_features.h"
#include "util/logging.h"

namespace rpt {

std::vector<double> ZeroEr::FitPredict(
    const std::vector<std::vector<double>>& features) {
  const size_t n = features.size();
  RPT_CHECK_GT(n, 1u);
  const size_t d = features[0].size();

  // Initialize responsibilities from the mean-feature quantile.
  std::vector<double> mass(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0;
    for (double f : features[i]) sum += f;
    mass[i] = sum;
  }
  std::vector<double> sorted_mass = mass;
  std::sort(sorted_mass.begin(), sorted_mass.end());
  const double cut = sorted_mass[static_cast<size_t>(
      config_.init_match_quantile * (n - 1))];
  std::vector<double> resp(n);  // responsibility of the match component
  for (size_t i = 0; i < n; ++i) {
    resp[i] = mass[i] >= cut ? 0.9 : 0.1;
  }

  std::vector<double> mean_match(d, 0), mean_non(d, 0);
  std::vector<double> var_match(d, 1), var_non(d, 1);
  double prior_match = 0.15;

  for (int64_t iter = 0; iter < config_.em_iterations; ++iter) {
    // M step.
    double weight_match = 0, weight_non = 0;
    std::fill(mean_match.begin(), mean_match.end(), 0.0);
    std::fill(mean_non.begin(), mean_non.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      weight_match += resp[i];
      weight_non += 1.0 - resp[i];
      for (size_t j = 0; j < d; ++j) {
        mean_match[j] += resp[i] * features[i][j];
        mean_non[j] += (1.0 - resp[i]) * features[i][j];
      }
    }
    weight_match = std::max(weight_match, 1e-6);
    weight_non = std::max(weight_non, 1e-6);
    for (size_t j = 0; j < d; ++j) {
      mean_match[j] /= weight_match;
      mean_non[j] /= weight_non;
    }
    std::fill(var_match.begin(), var_match.end(), 0.0);
    std::fill(var_non.begin(), var_non.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        const double dm = features[i][j] - mean_match[j];
        const double dn = features[i][j] - mean_non[j];
        var_match[j] += resp[i] * dm * dm;
        var_non[j] += (1.0 - resp[i]) * dn * dn;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      var_match[j] = std::max(var_match[j] / weight_match,
                              config_.min_variance);
      var_non[j] = std::max(var_non[j] / weight_non, config_.min_variance);
    }
    prior_match = weight_match / static_cast<double>(n);
    prior_match = std::min(0.95, std::max(0.01, prior_match));

    // E step (diagonal Gaussian log-likelihoods).
    for (size_t i = 0; i < n; ++i) {
      double log_match = std::log(prior_match);
      double log_non = std::log(1.0 - prior_match);
      for (size_t j = 0; j < d; ++j) {
        const double dm = features[i][j] - mean_match[j];
        const double dn = features[i][j] - mean_non[j];
        log_match += -0.5 * (dm * dm / var_match[j] +
                             std::log(2 * M_PI * var_match[j]));
        log_non += -0.5 * (dn * dn / var_non[j] +
                           std::log(2 * M_PI * var_non[j]));
      }
      const double mx = std::max(log_match, log_non);
      const double pm = std::exp(log_match - mx);
      const double pn = std::exp(log_non - mx);
      resp[i] = pm / (pm + pn);
    }
  }

  // Identify the match component: higher mean similarity mass.
  double mass_match = 0, mass_non = 0;
  for (size_t j = 0; j < d; ++j) {
    mass_match += mean_match[j];
    mass_non += mean_non[j];
  }
  if (mass_match < mass_non) {
    for (auto& r : resp) r = 1.0 - r;
  }
  return resp;
}

BinaryConfusion ZeroEr::Evaluate(const ErBenchmark& bench,
                                 double threshold) {
  std::vector<std::vector<double>> features;
  features.reserve(bench.pairs.size());
  for (const auto& pair : bench.pairs) {
    features.push_back(PairFeatures(
        bench.table_a.schema(), bench.table_a.row(pair.a),
        bench.table_b.schema(), bench.table_b.row(pair.b)));
  }
  auto scores = FitPredict(features);
  BinaryConfusion confusion;
  for (size_t i = 0; i < bench.pairs.size(); ++i) {
    confusion.Add(scores[i] >= threshold, bench.pairs[i].match);
  }
  return confusion;
}

}  // namespace rpt
