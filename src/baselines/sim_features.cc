#include "baselines/sim_features.h"

#include <algorithm>
#include <cmath>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace rpt {

const std::vector<std::string>& PairFeatureNames() {
  static const auto* names = new std::vector<std::string>{
      "lev_sim",        "token_jaccard", "qgram_jaccard",
      "containment",    "cosine",        "monge_elkan",
      "shared_col_sim", "numeric_sim",   "col_agreement",
      "len_ratio",
  };
  return *names;
}

std::string ConcatTuple(const Tuple& tuple) {
  std::string out;
  for (const auto& v : tuple) {
    if (v.is_null()) continue;
    if (!out.empty()) out += ' ';
    out += v.text();
  }
  return out;
}

std::vector<double> PairFeatures(const Schema& schema_a, const Tuple& a,
                                 const Schema& schema_b, const Tuple& b) {
  const std::string ca = ConcatTuple(a);
  const std::string cb = ConcatTuple(b);

  std::vector<double> features;
  features.reserve(kNumPairFeatures);
  features.push_back(LevenshteinSimilarity(ca, cb));
  features.push_back(TokenJaccard(ca, cb));
  features.push_back(QGramJaccard(ca, cb));
  features.push_back(TokenContainment(ca, cb));
  features.push_back(TokenCosine(ca, cb));
  features.push_back(0.5 * (MongeElkan(ca, cb) + MongeElkan(cb, ca)));

  // Shared-column aggregates.
  double col_sim_sum = 0.0;
  double numeric_sim_sum = 0.0;
  double agreement_sum = 0.0;
  int64_t shared = 0;
  int64_t numeric_shared = 0;
  for (int64_t col_a = 0; col_a < schema_a.size(); ++col_a) {
    const int64_t col_b = schema_b.Index(schema_a.name(col_a));
    if (col_b < 0) continue;
    const Value& va = a[static_cast<size_t>(col_a)];
    const Value& vb = b[static_cast<size_t>(col_b)];
    if (va.is_null() || vb.is_null()) continue;
    ++shared;
    col_sim_sum += TokenJaccard(va.text(), vb.text());
    agreement_sum += Tokenizer::Normalize(va.text()) ==
                             Tokenizer::Normalize(vb.text())
                         ? 1.0
                         : 0.0;
    if (va.is_number() && vb.is_number()) {
      ++numeric_shared;
      numeric_sim_sum += NumericSimilarity(va.number(), vb.number());
    }
  }
  features.push_back(shared == 0 ? 0.5 : col_sim_sum / shared);
  features.push_back(numeric_shared == 0
                         ? 0.5
                         : numeric_sim_sum / numeric_shared);
  features.push_back(shared == 0 ? 0.5 : agreement_sum / shared);

  const double la = static_cast<double>(ca.size());
  const double lb = static_cast<double>(cb.size());
  features.push_back(std::max(la, lb) == 0
                         ? 1.0
                         : std::min(la, lb) / std::max(la, lb));
  return features;
}

}  // namespace rpt
