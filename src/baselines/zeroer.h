// ZeroER baseline (Wu et al., SIGMOD 2020): entity resolution with zero
// labeled examples.
//
// Re-implementation of the core idea: pair-similarity features follow a
// two-component generative mixture (match vs non-match); fit it with EM
// (diagonal Gaussians) and classify by posterior. The match component is
// identified as the one with the higher mean feature mass. Initialization
// seeds responsibilities from a similarity quantile, as in the original's
// blocking-informed prior.

#ifndef RPT_BASELINES_ZEROER_H_
#define RPT_BASELINES_ZEROER_H_

#include <cstdint>
#include <vector>

#include "eval/metrics.h"
#include "synth/benchmarks.h"

namespace rpt {

struct ZeroErConfig {
  int64_t em_iterations = 40;
  double init_match_quantile = 0.85;  // top 15% similarity seeds matches
  double min_variance = 1e-4;
};

class ZeroEr {
 public:
  explicit ZeroEr(ZeroErConfig config = {}) : config_(config) {}

  /// Fits the mixture on the feature vectors of the given pairs (labels
  /// unused — fully unsupervised) and returns P(match) per pair.
  std::vector<double> FitPredict(
      const std::vector<std::vector<double>>& features);

  /// Convenience: extract features from a benchmark's pairs, fit, and
  /// evaluate against the labels.
  BinaryConfusion Evaluate(const ErBenchmark& bench,
                           double threshold = 0.5);

 private:
  ZeroErConfig config_;
};

}  // namespace rpt

#endif  // RPT_BASELINES_ZEROER_H_
