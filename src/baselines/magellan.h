// Magellan-style baseline (Konda et al., VLDB 2016): a random forest over
// similarity features. Includes a from-scratch CART decision tree (Gini
// impurity) and bagged ensemble with feature subsampling.

#ifndef RPT_BASELINES_MAGELLAN_H_
#define RPT_BASELINES_MAGELLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/metrics.h"
#include "synth/benchmarks.h"
#include "util/rng.h"

namespace rpt {

/// A binary CART classifier on dense double features.
class DecisionTree {
 public:
  struct Options {
    int64_t max_depth = 6;
    int64_t min_samples_leaf = 2;
    /// Features considered per split (0 = all).
    int64_t max_features = 0;
  };

  DecisionTree() = default;

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<bool>& y, const Options& options, Rng* rng);

  /// P(positive) for one sample (leaf class frequency).
  double PredictProba(const std::vector<double>& x) const;

  int64_t NodeCount() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int64_t feature = -1;      // -1 = leaf
    double threshold = 0.0;
    int64_t left = -1;
    int64_t right = -1;
    double positive_rate = 0.0;
  };

  int64_t Build(const std::vector<std::vector<double>>& x,
                const std::vector<bool>& y, std::vector<int64_t> indices,
                int64_t depth, const Options& options, Rng* rng);

  std::vector<Node> nodes_;
};

struct RandomForestConfig {
  int64_t num_trees = 15;
  DecisionTree::Options tree;
  uint64_t seed = 4;
};

class RandomForest {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<bool>& y);

  double PredictProba(const std::vector<double>& x) const;

  /// In-domain protocol identical to DeepMatcher's: 70/30 split.
  BinaryConfusion EvaluateInDomain(const ErBenchmark& bench,
                                   double threshold = 0.5);

 private:
  RandomForestConfig config_;
  Rng rng_;
  std::vector<DecisionTree> trees_;
};

}  // namespace rpt

#endif  // RPT_BASELINES_MAGELLAN_H_
