#include "baselines/magellan.h"

#include <algorithm>
#include <cmath>

#include "baselines/sim_features.h"
#include "util/logging.h"

namespace rpt {

namespace {

double Gini(int64_t pos, int64_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<bool>& y, const Options& options,
                       Rng* rng) {
  RPT_CHECK_EQ(x.size(), y.size());
  RPT_CHECK(!x.empty());
  nodes_.clear();
  std::vector<int64_t> indices(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  Build(x, y, std::move(indices), 0, options, rng);
}

int64_t DecisionTree::Build(const std::vector<std::vector<double>>& x,
                            const std::vector<bool>& y,
                            std::vector<int64_t> indices, int64_t depth,
                            const Options& options, Rng* rng) {
  const int64_t node_id = static_cast<int64_t>(nodes_.size());
  nodes_.emplace_back();
  int64_t pos = 0;
  for (int64_t i : indices) pos += y[static_cast<size_t>(i)];
  nodes_[static_cast<size_t>(node_id)].positive_rate =
      indices.empty() ? 0.0
                      : static_cast<double>(pos) /
                            static_cast<double>(indices.size());

  const int64_t total = static_cast<int64_t>(indices.size());
  if (depth >= options.max_depth || pos == 0 || pos == total ||
      total < 2 * options.min_samples_leaf) {
    return node_id;  // leaf
  }

  const int64_t num_features = static_cast<int64_t>(x[0].size());
  std::vector<int64_t> feature_pool(static_cast<size_t>(num_features));
  for (int64_t f = 0; f < num_features; ++f) {
    feature_pool[static_cast<size_t>(f)] = f;
  }
  if (options.max_features > 0 && options.max_features < num_features) {
    rng->Shuffle(&feature_pool);
    feature_pool.resize(static_cast<size_t>(options.max_features));
  }

  double best_score = Gini(pos, total);
  int64_t best_feature = -1;
  double best_threshold = 0.0;
  for (int64_t f : feature_pool) {
    // Candidate thresholds: midpoints between sorted distinct values.
    std::vector<double> values;
    values.reserve(indices.size());
    for (int64_t i : indices) {
      values.push_back(x[static_cast<size_t>(i)][static_cast<size_t>(f)]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (size_t v = 0; v + 1 < values.size(); ++v) {
      const double threshold = 0.5 * (values[v] + values[v + 1]);
      int64_t left_total = 0, left_pos = 0;
      for (int64_t i : indices) {
        if (x[static_cast<size_t>(i)][static_cast<size_t>(f)] <=
            threshold) {
          ++left_total;
          left_pos += y[static_cast<size_t>(i)];
        }
      }
      const int64_t right_total = total - left_total;
      const int64_t right_pos = pos - left_pos;
      if (left_total < options.min_samples_leaf ||
          right_total < options.min_samples_leaf) {
        continue;
      }
      const double score =
          (static_cast<double>(left_total) / total) *
              Gini(left_pos, left_total) +
          (static_cast<double>(right_total) / total) *
              Gini(right_pos, right_total);
      if (score + 1e-12 < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;  // no useful split

  std::vector<int64_t> left_idx, right_idx;
  for (int64_t i : indices) {
    if (x[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  const int64_t left =
      Build(x, y, std::move(left_idx), depth + 1, options, rng);
  const int64_t right =
      Build(x, y, std::move(right_idx), depth + 1, options, rng);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictProba(const std::vector<double>& x) const {
  RPT_CHECK(!nodes_.empty()) << "tree not fitted";
  int64_t node = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    if (n.feature < 0) return n.positive_rate;
    node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                            : n.right;
  }
}

RandomForest::RandomForest(RandomForestConfig config)
    : config_(config), rng_(config.seed) {}

void RandomForest::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<bool>& y) {
  RPT_CHECK(!x.empty());
  trees_.clear();
  trees_.resize(static_cast<size_t>(config_.num_trees));
  DecisionTree::Options tree_options = config_.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = std::max<int64_t>(
        2, static_cast<int64_t>(std::sqrt(
               static_cast<double>(x[0].size()))) + 1);
  }
  for (auto& tree : trees_) {
    // Bootstrap sample.
    std::vector<std::vector<double>> bx;
    std::vector<bool> by;
    bx.reserve(x.size());
    by.reserve(y.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const size_t pick = rng_.UniformInt(x.size());
      bx.push_back(x[pick]);
      by.push_back(y[pick]);
    }
    tree.Fit(bx, by, tree_options, &rng_);
  }
}

double RandomForest::PredictProba(const std::vector<double>& x) const {
  RPT_CHECK(!trees_.empty()) << "forest not fitted";
  double sum = 0;
  for (const auto& tree : trees_) sum += tree.PredictProba(x);
  return sum / static_cast<double>(trees_.size());
}

BinaryConfusion RandomForest::EvaluateInDomain(const ErBenchmark& bench,
                                               double threshold) {
  std::vector<std::vector<double>> features;
  features.reserve(bench.pairs.size());
  for (const auto& pair : bench.pairs) {
    features.push_back(PairFeatures(
        bench.table_a.schema(), bench.table_a.row(pair.a),
        bench.table_b.schema(), bench.table_b.row(pair.b)));
  }
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng split_rng(config_.seed ^ 0x7A7A);
  split_rng.Shuffle(&order);
  const size_t train_n = static_cast<size_t>(0.7 * order.size());
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<bool> train_y, test_y;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < train_n) {
      train_x.push_back(features[order[i]]);
      train_y.push_back(bench.pairs[order[i]].match);
    } else {
      test_x.push_back(features[order[i]]);
      test_y.push_back(bench.pairs[order[i]].match);
    }
  }
  Fit(train_x, train_y);
  BinaryConfusion confusion;
  for (size_t i = 0; i < test_x.size(); ++i) {
    confusion.Add(PredictProba(test_x[i]) >= threshold, test_y[i]);
  }
  return confusion;
}

}  // namespace rpt
