// RFC-4180-ish CSV reading/writing (quotes, embedded separators, newlines).

#ifndef RPT_UTIL_CSV_H_
#define RPT_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rpt {

/// Parses CSV text into rows of fields. Handles double-quoted fields with
/// escaped quotes ("") and embedded separators/newlines. A trailing newline
/// does not produce an empty final row.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, char sep = ',');

/// Serializes rows to CSV text, quoting fields that need it.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char sep = ',');

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char sep = ',');

/// Writes rows to a CSV file.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep = ',');

}  // namespace rpt

#endif  // RPT_UTIL_CSV_H_
