// Small string helpers shared across the library.

#ifndef RPT_UTIL_STRING_UTIL_H_
#define RPT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rpt {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// True if the string parses fully as a finite double.
bool IsNumber(std::string_view text);

/// Parses a double; returns fallback when not a number.
double ParseDoubleOr(std::string_view text, double fallback);

/// Formats a double trimming trailing zeros ("9.99", "64", "5.8").
std::string FormatNumber(double value);

}  // namespace rpt

#endif  // RPT_UTIL_STRING_UTIL_H_
