// Binary serialization used for model checkpoints.
//
// Little-endian, tagged with a magic header. Writers append primitives and
// containers; readers consume them in the same order and fail with a Status
// on truncation or magic mismatch rather than crashing.

#ifndef RPT_UTIL_SERIALIZE_H_
#define RPT_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace rpt {

/// Accumulates a byte buffer of primitives/containers.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF32(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    AppendRaw(s.data(), s.size());
  }

  void WriteFloatVector(const std::vector<float>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(float));
  }

  void WriteI64Vector(const std::vector<int64_t>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(int64_t));
  }

  /// Pre-sizes the buffer's capacity for a known payload size.
  void Reserve(size_t n) { bytes_.reserve(n); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Writes the accumulated buffer to a file.
  Status SaveToFile(const std::string& path) const;

 private:
  void AppendRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<uint8_t> bytes_;
};

/// Sequentially consumes a byte buffer written by BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloatVector();
  Result<std::vector<int64_t>> ReadI64Vector();

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status CopyRaw(void* out, size_t n);

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace rpt

#endif  // RPT_UTIL_SERIALIZE_H_
