#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace rpt {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace rpt
