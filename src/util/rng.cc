#include "util/rng.h"

#include <cmath>

namespace rpt {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  RPT_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  RPT_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  RPT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RPT_CHECK_GE(w, 0.0);
    total += w;
  }
  RPT_CHECK_GT(total, 0.0) << "WeightedIndex requires a positive total";
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  RPT_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k positions are a uniform sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace rpt
