// BoundedQueue<T>: a mutex-based bounded MPMC queue with batch draining.
//
// Built for the serving layer's micro-batching scheduler (serve/server.h):
// many client threads TryPush requests (non-blocking, turned away when full
// so the server can exert backpressure — PushResult distinguishes a full
// queue from a closed one so the caller can report shutdown correctly),
// one or more collector threads drain with PopBatch, which blocks for the
// first element and then gathers more until either `max_n` elements are
// collected or `max_wait` elapses. PopBatchWith defers the choice of
// `max_wait` to a callback invoked once the first element is in hand, so
// an adaptive scheduler can size the straggler window from the live queue
// state (serve/adaptive.h).
//
// Close() stops producers but lets consumers drain what is already queued —
// PopBatch keeps returning elements until the queue is empty, then reports
// closed. That is exactly the graceful-shutdown semantics a server wants.
//
// T only needs to be movable (the serving layer queues types holding
// std::promise).

#ifndef RPT_UTIL_BOUNDED_QUEUE_H_
#define RPT_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace rpt {

/// Outcome of a TryPush. kFull and kClosed both mean "not enqueued", but
/// callers must not conflate them: full is backpressure, closed is
/// shutdown, and the serving layer reports them differently.
enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; reports whether the element was enqueued, and if
  /// not, whether the queue was full or already closed.
  PushResult TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Pops one element, waiting up to `timeout`. Empty optional on timeout or
  /// on a closed-and-drained queue.
  std::optional<T> PopWait(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Blocks until at least one element is available (or the queue is closed
  /// and empty), then keeps draining until `max_n` elements are gathered or
  /// `max_wait` has elapsed since the first element was taken. Appends to
  /// `*out` and returns true, or returns false when closed and drained.
  bool PopBatch(std::vector<T>* out, size_t max_n,
                std::chrono::microseconds max_wait) {
    return PopBatchWith(out, max_n,
                        [max_wait](size_t) { return max_wait; });
  }

  /// PopBatch with the straggler window decided late: once the first
  /// element(s) have been taken, `wait_for(pending)` is called exactly once
  /// with the number of elements available at that instant (already in
  /// `*out` plus still queued) and returns the `max_wait` to apply. Called
  /// with the queue lock held — it must not call back into this queue.
  template <typename WaitFn>
  bool PopBatchWith(std::vector<T>* out, size_t max_n, WaitFn&& wait_for) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and fully drained
    while (!items_.empty() && out->size() < max_n) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    const std::chrono::microseconds max_wait =
        wait_for(out->size() + items_.size());
    if (out->size() >= max_n || closed_) return true;
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      while (!items_.empty() && out->size() < max_n) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
      if (out->size() >= max_n || closed_) break;
      if (not_empty_.wait_until(lock, deadline, [this] {
            return closed_ || !items_.empty();
          })) {
        continue;  // woke with work (or closed); loop to drain / exit
      }
      break;  // deadline hit with a partial batch
    }
    return true;
  }

  /// Stops further pushes; waiting consumers wake and drain the remainder.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rpt

#endif  // RPT_UTIL_BOUNDED_QUEUE_H_
