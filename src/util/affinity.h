// Thread-to-CPU pinning for the serving layer.
//
// Replica shards pin their collector threads so each shard's forward passes
// keep their working set (weights are shared and read-only, activations are
// per-shard) warm in one core's private caches instead of migrating. Best
// effort: unsupported platforms and failed syscalls return false and the
// thread simply stays unpinned.

#ifndef RPT_UTIL_AFFINITY_H_
#define RPT_UTIL_AFFINITY_H_

namespace rpt {

/// Pins the calling thread to logical CPU `cpu` (modulo the online CPU
/// count, so round-robin assignment never passes an out-of-range id).
/// Returns true when the affinity mask was applied.
bool PinCurrentThreadToCpu(int cpu);

/// Logical CPUs available to this process (>= 1).
int OnlineCpuCount();

}  // namespace rpt

#endif  // RPT_UTIL_AFFINITY_H_
