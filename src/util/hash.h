// Stable string hashing for dispatch decisions.
//
// FNV-1a is tiny, fast on short keys, and — unlike std::hash, whose value is
// implementation-defined — produces the same value on every platform and
// every run. The serving layer uses it to map request payloads onto shards:
// a stable payload→shard assignment keeps repeats of the same payload on the
// same shard, so that shard's LRU response cache absorbs them.

#ifndef RPT_UTIL_HASH_H_
#define RPT_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace rpt {

inline constexpr uint64_t kFnvOffsetBasis64 = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime64 = 0x100000001b3ull;

/// 64-bit FNV-1a over the bytes of `data`. Deterministic across runs and
/// platforms; suitable for sharding, not for adversarial inputs.
constexpr uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = kFnvOffsetBasis64;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime64;
  }
  return hash;
}

}  // namespace rpt

#endif  // RPT_UTIL_HASH_H_
