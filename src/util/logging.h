// Minimal logging and precondition checking.
//
// RPT_CHECK* abort on programmer error with a source location; RPT_LOG emits
// a timestamped line to stderr. Verbosity is controlled by SetLogLevel.

#ifndef RPT_UTIL_LOGGING_H_
#define RPT_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace rpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RPT_LOG(level)                                                  \
  ::rpt::internal::LogMessage(::rpt::LogLevel::k##level, __FILE__,      \
                              __LINE__)                                 \
      .stream()

#define RPT_CHECK(condition)                                           \
  if (!(condition))                                                    \
  ::rpt::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define RPT_CHECK_EQ(a, b) RPT_CHECK((a) == (b))
#define RPT_CHECK_NE(a, b) RPT_CHECK((a) != (b))
#define RPT_CHECK_LT(a, b) RPT_CHECK((a) < (b))
#define RPT_CHECK_LE(a, b) RPT_CHECK((a) <= (b))
#define RPT_CHECK_GT(a, b) RPT_CHECK((a) > (b))
#define RPT_CHECK_GE(a, b) RPT_CHECK((a) >= (b))

}  // namespace rpt

#endif  // RPT_UTIL_LOGGING_H_
