#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace rpt {

ThreadPool::ThreadPool(size_t num_threads) {
  RPT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t shards = std::max<size_t>(1, std::min(num_threads(), n));
  const size_t chunk = (n + shards - 1) / shards;
  if (shards == 1 || chunk >= n) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Shards 1..k run on the pool; shard 0 runs inline on the caller so the
  // calling thread contributes work instead of idling on the wait.
  // `remaining` is fixed before any task is submitted: a shard finishing
  // early must never race a later unlocked increment.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = 0;
  for (size_t s = 1; s < shards; ++s) {
    if (s * chunk < n) ++remaining;
  }
  for (size_t s = 1; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &body, &done_mu, &done_cv, &remaining] {
      for (size_t i = begin; i < end; ++i) body(i);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  for (size_t i = 0; i < std::min(n, chunk); ++i) body(i);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  num_threads = std::max<size_t>(1, std::min(num_threads, n));
  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t chunk = (n + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace rpt
