#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace rpt {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == sep) {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // Tolerate CRLF.
    } else if (c == '\n') {
      end_row();
      ++i;
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

namespace {
bool NeedsQuoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}
}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char sep) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += sep;
      if (NeedsQuoting(row[i], sep)) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), sep);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(rows, sep);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace rpt
