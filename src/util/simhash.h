// SimHash near-duplicate signatures over normalized token shingles.
//
// Dirty relational traffic repeats with trivial surface variation: the same
// tuple arrives with different whitespace, casing, or attribute order. A
// SimHash signature (Charikar 2002; the core trick of mostsimilar's 128-bit
// variant) maps a payload to 64/128 bits such that near-identical texts
// differ in only a few bit positions — similarity is one XOR + popcount.
//
// Three layers live here:
//  * NormalizeSpec / NormalizeForDedup: the configurable canonicalization
//    (field trim, ASCII case-fold, attribute sort) applied before hashing.
//    Normalization is a *keying* device — the original payload is what a
//    model ever sees; only cache/dedup identity goes through it.
//  * SimHash64 / SimHash128: signatures over word shingles of the
//    normalized text, deterministic across runs and platforms (FNV-1a
//    shingle hashes + a splitmix64 expansion for the high lane).
//  * SimHashIndex: a bounded LSH band index (banding over contiguous
//    16-bit slices) answering "is any previously added signature within
//    `max_hamming` bits of this one?" in O(bands · bucket) — the structure
//    the serving layer puts in front of its LRU response cache, and the
//    corpus dedup pass (corpus/dedup.h) scales over pretraining data.
//
// Banding guarantee: two signatures within Hamming distance d collide in at
// least one band whenever d < kBands (pigeonhole); probes verify the exact
// distance, so the index never reports a match past the caller's threshold.
// Past-kBands distances may be missed — acceptable for a cache, wrong for
// an exhaustive join (use pairwise HammingDistance for that).

#ifndef RPT_UTIL_SIMHASH_H_
#define RPT_UTIL_SIMHASH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rpt {

/// Canonicalization applied before signature or key computation. All three
/// transforms are independent; the serving layer exposes them through the
/// ServerConfig exactness knob.
struct NormalizeSpec {
  /// Strip ASCII whitespace around each field and collapse internal runs
  /// of whitespace to one space.
  bool trim = true;
  /// ASCII case-fold (tolower).
  bool case_fold = true;
  /// Sort the fields of each record lexicographically, so attribute order
  /// stops mattering. Records (0x1e-separated) keep their relative order:
  /// a matcher pair (a, b) is not the same request as (b, a).
  bool attribute_sort = true;
};

/// Canonical form of `payload` under `spec`. Fields are the 0x1f-separated
/// units the session payload encoders emit (serve/sessions.h); plain text
/// without separators is treated as a single one-field record. Identity
/// when every knob is off.
std::string NormalizeForDedup(std::string_view payload,
                              const NormalizeSpec& spec);

/// 128-bit SimHash signature. Value-comparable; `lo` carries bit 0.
struct SimHash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const SimHash128& a, const SimHash128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const SimHash128& a, const SimHash128& b) {
    return !(a == b);
  }
};

/// Bits that differ between two signatures (XOR + popcount), in [0, 128].
int HammingDistance(const SimHash128& a, const SimHash128& b);

/// 64-bit SimHash over word `shingle_size`-grams of `text` (already
/// normalized by the caller). Shorter texts than one shingle hash their
/// individual tokens; empty text maps to signature 0.
uint64_t SimHash64(std::string_view text, int shingle_size = 2);

/// 128-bit SimHash, same shingling as SimHash64 with an independent second
/// lane. This is the signature the serving index and corpus dedup use.
SimHash128 ComputeSimHash(std::string_view text, int shingle_size = 2);

/// Bounded LSH band index over SimHash128 signatures.
///
/// Add() associates a signature with a caller-owned key (for the serving
/// layer: the normalized cache key whose response the LRU holds).
/// FindNearest() returns the key of the closest stored signature within
/// `max_hamming` bits, if any. Capacity is a ring: the oldest entry is
/// overwritten once full, and its band-bucket references die lazily
/// (generation-checked on probe), so Add/Find stay O(bands).
///
/// Not internally synchronized — callers serialize access (ServeShard
/// guards it with its own mutex; corpus dedup is single-threaded).
class SimHashIndex {
 public:
  static constexpr int kBands = 8;        // 8 bands x 16 bits = 128
  static constexpr int kBandBits = 16;

  /// `capacity` > 0: maximum live entries before the ring overwrites.
  explicit SimHashIndex(size_t capacity);

  SimHashIndex(const SimHashIndex&) = delete;
  SimHashIndex& operator=(const SimHashIndex&) = delete;

  /// Stores (signature, key), evicting the oldest entry when full.
  void Add(const SimHash128& signature, std::string key);

  /// Key of the closest stored signature within `max_hamming` bits of
  /// `signature` (ties: lowest distance, then oldest), or nullopt. Never
  /// returns a key whose verified distance exceeds `max_hamming`.
  std::optional<std::string> FindNearest(const SimHash128& signature,
                                         int max_hamming) const;

  size_t size() const { return live_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    SimHash128 signature;
    std::string key;
    uint64_t generation = 0;  // 0 = slot never written
  };

  /// 16-bit slice `band` of `signature`, tagged with the band number so
  /// identical bits in different bands never share a bucket.
  static uint32_t BandKey(const SimHash128& signature, int band);

  const size_t capacity_;
  size_t live_ = 0;
  uint64_t next_generation_ = 0;
  std::vector<Entry> slots_;  // ring, slot = generation % capacity
  // band key -> (slot, generation at insert); stale pairs are dropped
  // whenever a probe or insert walks the bucket.
  mutable std::unordered_map<uint32_t,
                             std::vector<std::pair<uint32_t, uint64_t>>>
      buckets_;
};

}  // namespace rpt

#endif  // RPT_UTIL_SIMHASH_H_
