// Steady-clock stopwatch for reporting stage timings in benches. (Steady,
// not system/wall time: elapsed readings must survive clock adjustments —
// the same rule the serving layer follows for all timing.)

#ifndef RPT_UTIL_TIMER_H_
#define RPT_UTIL_TIMER_H_

#include <chrono>

namespace rpt {

/// Starts on construction; ElapsedSeconds/Millis read without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpt

#endif  // RPT_UTIL_TIMER_H_
