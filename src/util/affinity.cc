#include "util/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace rpt {

int OnlineCpuCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool PinCurrentThreadToCpu(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  const int target = cpu % OnlineCpuCount();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<size_t>(target), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace rpt
