#include "util/simhash.h"

#include <algorithm>
#include <cctype>

#include "util/hash.h"
#include "util/logging.h"

namespace rpt {

namespace {

constexpr char kUnitSep = '\x1f';    // between fields (serve/sessions.h)
constexpr char kRecordSep = '\x1e';  // between records of a pair payload

/// Trim + collapse internal whitespace runs of one field, in place on the
/// output buffer.
void AppendCollapsed(std::string_view field, std::string* out) {
  size_t begin = 0, end = field.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(field[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(field[end - 1]))) {
    --end;
  }
  bool in_run = false;
  for (size_t i = begin; i < end; ++i) {
    const char c = field[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_run = true;
      continue;
    }
    if (in_run) out->push_back(' ');
    in_run = false;
    out->push_back(c);
  }
}

std::vector<std::string_view> SplitView(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// splitmix64 finalizer: expands one 64-bit hash into an independent
/// second lane for the 128-bit signature.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Splits normalized text into word tokens (whitespace and the payload
/// separators both delimit).
std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t start = std::string_view::npos;
  for (size_t i = 0; i <= text.size(); ++i) {
    const bool boundary =
        i == text.size() || text[i] == ' ' || text[i] == kUnitSep ||
        text[i] == kRecordSep ||
        std::isspace(static_cast<unsigned char>(text[i]));
    if (boundary) {
      if (start != std::string_view::npos) {
        tokens.push_back(text.substr(start, i - start));
        start = std::string_view::npos;
      }
    } else if (start == std::string_view::npos) {
      start = i;
    }
  }
  return tokens;
}

/// Accumulates the signed bit votes of one shingle hash pair.
void Vote(uint64_t h_lo, uint64_t h_hi, int* counts) {
  for (int b = 0; b < 64; ++b) {
    counts[b] += (h_lo >> b) & 1 ? 1 : -1;
    counts[64 + b] += (h_hi >> b) & 1 ? 1 : -1;
  }
}

SimHash128 FromCounts(const int* counts) {
  SimHash128 sig;
  for (int b = 0; b < 64; ++b) {
    if (counts[b] > 0) sig.lo |= (1ull << b);
    if (counts[64 + b] > 0) sig.hi |= (1ull << b);
  }
  return sig;
}

}  // namespace

std::string NormalizeForDedup(std::string_view payload,
                              const NormalizeSpec& spec) {
  if (!spec.trim && !spec.case_fold && !spec.attribute_sort) {
    return std::string(payload);
  }
  std::string out;
  out.reserve(payload.size());
  const std::vector<std::string_view> records = SplitView(payload, kRecordSep);
  for (size_t r = 0; r < records.size(); ++r) {
    if (r > 0) out.push_back(kRecordSep);
    std::vector<std::string> fields;
    for (std::string_view field : SplitView(records[r], kUnitSep)) {
      std::string canon;
      canon.reserve(field.size());
      if (spec.trim) {
        AppendCollapsed(field, &canon);
      } else {
        canon.assign(field);
      }
      if (spec.case_fold) {
        std::transform(canon.begin(), canon.end(), canon.begin(),
                       [](unsigned char c) { return std::tolower(c); });
      }
      fields.push_back(std::move(canon));
    }
    if (spec.attribute_sort) std::sort(fields.begin(), fields.end());
    for (size_t f = 0; f < fields.size(); ++f) {
      if (f > 0) out.push_back(kUnitSep);
      out.append(fields[f]);
    }
  }
  return out;
}

int HammingDistance(const SimHash128& a, const SimHash128& b) {
  return __builtin_popcountll(a.lo ^ b.lo) +
         __builtin_popcountll(a.hi ^ b.hi);
}

SimHash128 ComputeSimHash(std::string_view text, int shingle_size) {
  RPT_CHECK_GE(shingle_size, 1);
  int counts[128] = {0};
  const std::vector<std::string_view> tokens = Tokenize(text);
  if (tokens.empty()) return {};
  const size_t k = static_cast<size_t>(shingle_size);
  if (tokens.size() < k) {
    // Degenerate text: hash the single (short) shingle it forms.
    uint64_t h = kFnvOffsetBasis64;
    for (std::string_view token : tokens) {
      for (char c : token) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime64;
      }
      h ^= 0x1f;  // token boundary
      h *= kFnvPrime64;
    }
    Vote(h, Mix64(h), counts);
    return FromCounts(counts);
  }
  for (size_t i = 0; i + k <= tokens.size(); ++i) {
    uint64_t h = kFnvOffsetBasis64;
    for (size_t j = i; j < i + k; ++j) {
      for (char c : tokens[j]) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime64;
      }
      h ^= 0x1f;
      h *= kFnvPrime64;
    }
    Vote(h, Mix64(h), counts);
  }
  return FromCounts(counts);
}

uint64_t SimHash64(std::string_view text, int shingle_size) {
  return ComputeSimHash(text, shingle_size).lo;
}

SimHashIndex::SimHashIndex(size_t capacity) : capacity_(capacity) {
  RPT_CHECK_GE(capacity_, 1u);
  slots_.resize(capacity_);
}

uint32_t SimHashIndex::BandKey(const SimHash128& signature, int band) {
  const uint64_t lane = band < 4 ? signature.lo : signature.hi;
  const int shift = (band % 4) * kBandBits;
  const uint32_t bits = static_cast<uint32_t>((lane >> shift) & 0xffffu);
  return (static_cast<uint32_t>(band) << kBandBits) | bits;
}

void SimHashIndex::Add(const SimHash128& signature, std::string key) {
  const uint64_t generation = ++next_generation_;
  const uint32_t slot = static_cast<uint32_t>((generation - 1) % capacity_);
  Entry& entry = slots_[slot];
  const bool overwrote = entry.generation != 0;
  entry.signature = signature;
  entry.key = std::move(key);
  entry.generation = generation;
  if (!overwrote) ++live_;
  for (int band = 0; band < kBands; ++band) {
    auto& bucket = buckets_[BandKey(signature, band)];
    // Drop references whose slot has been overwritten since insert; keeps
    // bucket growth bounded by the live entries that share the band.
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [this](const std::pair<uint32_t, uint64_t>& e) {
                                  return slots_[e.first].generation != e.second;
                                }),
                 bucket.end());
    bucket.emplace_back(slot, generation);
  }
}

std::optional<std::string> SimHashIndex::FindNearest(
    const SimHash128& signature, int max_hamming) const {
  int best_distance = max_hamming + 1;
  uint64_t best_generation = 0;
  const Entry* best = nullptr;
  for (int band = 0; band < kBands; ++band) {
    const auto it = buckets_.find(BandKey(signature, band));
    if (it == buckets_.end()) continue;
    for (const auto& [slot, generation] : it->second) {
      const Entry& entry = slots_[slot];
      if (entry.generation != generation) continue;  // overwritten
      const int d = HammingDistance(entry.signature, signature);
      if (d < best_distance ||
          (d == best_distance && best != nullptr &&
           entry.generation < best_generation)) {
        best_distance = d;
        best_generation = entry.generation;
        best = &entry;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->key;
}

}  // namespace rpt
