// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic components of RPT (weight init, masking, data synthesis,
// dropout) draw from an explicitly seeded Rng so that every experiment is
// reproducible bit-for-bit across runs.

#ifndef RPT_UTIL_RNG_H_
#define RPT_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rpt {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), wrapped with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0), rejection-sampled to avoid
  /// modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with given mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial.
  bool Bernoulli(double p);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    RPT_CHECK(!items.empty()) << "Choice from empty vector";
    return items[UniformInt(items.size())];
  }

  /// Index sampled proportionally to non-negative weights (not all zero).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child generator; the parent advances.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rpt

#endif  // RPT_UTIL_RNG_H_
