// Status and Result<T>: expected-failure signalling without exceptions.
//
// Public RPT APIs report recoverable failures (bad input files, malformed
// tuples, dimension mismatches detected at runtime) through Status/Result
// rather than throwing. Programmer errors (violated preconditions) abort via
// RPT_CHECK in logging.h.

#ifndef RPT_UTIL_STATUS_H_
#define RPT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rpt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnavailable,        // transient: resource busy / at capacity, retryable
  kDeadlineExceeded,   // the caller's deadline passed before completion
};

/// Returns a human-readable name for `code` ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value. Copyable; the error message is only
/// allocated on failure paths.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled on absl::StatusOr.
template <typename T>
class Result {
 public:
  // Implicit conversions from T and Status intentionally mirror
  // absl::StatusOr ergonomics: `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define RPT_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::rpt::Status rpt_status_tmp_ = (expr);    \
    if (!rpt_status_tmp_.ok()) {               \
      return rpt_status_tmp_;                  \
    }                                          \
  } while (false)

}  // namespace rpt

#endif  // RPT_UTIL_STATUS_H_
