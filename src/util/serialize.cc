#include "util/serialize.h"

#include <fstream>

namespace rpt {

Status BinaryWriter::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed for " + path);
  }
  return BinaryReader(std::move(bytes));
}

Status BinaryReader::CopyRaw(void* out, size_t n) {
  if (pos_ + n > bytes_.size()) {
    return Status::OutOfRange("truncated buffer");
  }
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  RPT_RETURN_IF_ERROR(CopyRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  RPT_RETURN_IF_ERROR(CopyRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  RPT_RETURN_IF_ERROR(CopyRaw(&v, sizeof(v)));
  return v;
}

Result<float> BinaryReader::ReadF32() {
  float v = 0;
  RPT_RETURN_IF_ERROR(CopyRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadF64() {
  double v = 0;
  RPT_RETURN_IF_ERROR(CopyRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  if (pos_ + *n > bytes_.size()) {
    return Status::OutOfRange("truncated string");
  }
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), *n);
  pos_ += *n;
  return s;
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  std::vector<float> v(*n);
  RPT_RETURN_IF_ERROR(CopyRaw(v.data(), *n * sizeof(float)));
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadI64Vector() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  std::vector<int64_t> v(*n);
  RPT_RETURN_IF_ERROR(CopyRaw(v.data(), *n * sizeof(int64_t)));
  return v;
}

}  // namespace rpt
