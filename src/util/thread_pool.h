// Fixed-size worker pool with a ParallelFor convenience.
//
// Used for embarrassingly parallel evaluation loops (pair scoring,
// similarity features). Model *training* stays single-threaded so gradients
// are bit-reproducible.

#ifndef RPT_UTIL_THREAD_POOL_H_
#define RPT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rpt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, n), partitioned over the pool; blocks until
  /// complete. Falls back to inline execution for n smaller than the pool.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace rpt

#endif  // RPT_UTIL_THREAD_POOL_H_
