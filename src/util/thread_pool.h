// Fixed-size worker pool with a ParallelFor convenience.
//
// Used for embarrassingly parallel evaluation loops (pair scoring,
// similarity features). Model *training* stays single-threaded so gradients
// are bit-reproducible.

#ifndef RPT_UTIL_THREAD_POOL_H_
#define RPT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rpt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, n) partitioned over this pool's workers;
  /// blocks until complete. The calling thread executes the first shard
  /// itself, so there is no per-call thread spawn. Must not be called from
  /// inside a pool task (the wait could deadlock on a saturated pool).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Static shim: runs body(i) for i in [0, n) on up to `num_threads`
  /// freshly spawned threads. Prefer the instance method on a hot path —
  /// this exists for one-shot callers without a pool at hand.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace rpt

#endif  // RPT_UTIL_THREAD_POOL_H_
