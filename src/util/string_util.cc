#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rpt {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

bool IsNumber(std::string_view text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::string buf(text);
  double v = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && std::isfinite(v);
}

double ParseDoubleOr(std::string_view text, double fallback) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  std::string buf(text);
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || !std::isfinite(v)) return fallback;
  return v;
}

std::string FormatNumber(double value) {
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  std::string out(buf);
  while (!out.empty() && out.back() == '0') out.pop_back();
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

}  // namespace rpt
