// Schema, Tuple, Table: the minimal relational substrate RPT runs on.

#ifndef RPT_TABLE_TABLE_H_
#define RPT_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/value.h"
#include "util/status.h"

namespace rpt {

/// Ordered attribute names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names);

  int64_t size() const { return static_cast<int64_t>(names_.size()); }
  const std::string& name(int64_t i) const;
  const std::vector<std::string>& names() const { return names_; }

  /// Column index by name; -1 when absent.
  int64_t Index(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
};

/// One row: values aligned with a Schema.
using Tuple = std::vector<Value>;

/// An in-memory table with a schema.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }
  int64_t NumColumns() const { return schema_.size(); }

  /// Appends a row (must match the schema width).
  void AddRow(Tuple row);

  const Tuple& row(int64_t i) const;
  Tuple& mutable_row(int64_t i);

  const Value& at(int64_t row, int64_t col) const;
  void Set(int64_t row, int64_t col, Value value);

  /// Values of one column, in row order.
  std::vector<Value> Column(int64_t col) const;

  /// Loads a table from CSV text; the first row is the header.
  static Result<Table> FromCsv(const std::string& csv_text);

  /// Serializes to CSV (header + rows).
  std::string ToCsv() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

/// Renders a tuple for humans: "name=Michael Jordan | city=Berkeley".
std::string FormatTuple(const Schema& schema, const Tuple& tuple);

}  // namespace rpt

#endif  // RPT_TABLE_TABLE_H_
