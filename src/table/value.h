// Cell values: null, string, or number. Numbers keep their original text
// rendering so round-trips through CSV are lossless.

#ifndef RPT_TABLE_VALUE_H_
#define RPT_TABLE_VALUE_H_

#include <string>
#include <string_view>

namespace rpt {

class Value {
 public:
  enum class Kind { kNull, kString, kNumber };

  /// Null value.
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value String(std::string text);
  static Value Number(double number);

  /// Parses: empty -> null, numeric text -> number, otherwise string.
  static Value Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  /// Text rendering ("" for null).
  const std::string& text() const { return text_; }

  /// Numeric value (CHECKs kind()==kNumber).
  double number() const;

  /// Equality: same kind and same content (numbers compare numerically).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Kind kind_;
  std::string text_;
  double number_ = 0.0;
};

}  // namespace rpt

#endif  // RPT_TABLE_VALUE_H_
