#include "table/table.h"

#include "util/csv.h"
#include "util/logging.h"

namespace rpt {

Schema::Schema(std::vector<std::string> names) : names_(std::move(names)) {}

const std::string& Schema::name(int64_t i) const {
  RPT_CHECK(i >= 0 && i < size());
  return names_[static_cast<size_t>(i)];
}

int64_t Schema::Index(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int64_t>(i);
  }
  return -1;
}

void Table::AddRow(Tuple row) {
  RPT_CHECK_EQ(static_cast<int64_t>(row.size()), schema_.size())
      << "row width does not match schema";
  rows_.push_back(std::move(row));
}

const Tuple& Table::row(int64_t i) const {
  RPT_CHECK(i >= 0 && i < NumRows());
  return rows_[static_cast<size_t>(i)];
}

Tuple& Table::mutable_row(int64_t i) {
  RPT_CHECK(i >= 0 && i < NumRows());
  return rows_[static_cast<size_t>(i)];
}

const Value& Table::at(int64_t row_idx, int64_t col) const {
  RPT_CHECK(col >= 0 && col < NumColumns());
  return row(row_idx)[static_cast<size_t>(col)];
}

void Table::Set(int64_t row_idx, int64_t col, Value value) {
  RPT_CHECK(col >= 0 && col < NumColumns());
  mutable_row(row_idx)[static_cast<size_t>(col)] = std::move(value);
}

std::vector<Value> Table::Column(int64_t col) const {
  RPT_CHECK(col >= 0 && col < NumColumns());
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[static_cast<size_t>(col)]);
  return out;
}

Result<Table> Table::FromCsv(const std::string& csv_text) {
  auto rows = ParseCsv(csv_text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  Table table{Schema((*rows)[0])};
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& raw = (*rows)[i];
    if (static_cast<int64_t>(raw.size()) != table.schema().size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i) + " has " +
          std::to_string(raw.size()) + " fields, expected " +
          std::to_string(table.schema().size()));
    }
    Tuple tuple;
    tuple.reserve(raw.size());
    for (const auto& field : raw) tuple.push_back(Value::Parse(field));
    table.AddRow(std::move(tuple));
  }
  return table;
}

std::string Table::ToCsv() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(schema_.names());
  for (const auto& r : rows_) {
    std::vector<std::string> fields;
    fields.reserve(r.size());
    for (const auto& v : r) fields.push_back(v.text());
    rows.push_back(std::move(fields));
  }
  return WriteCsv(rows);
}

std::string FormatTuple(const Schema& schema, const Tuple& tuple) {
  std::string out;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.name(static_cast<int64_t>(i));
    out += "=";
    out += tuple[i].is_null() ? "<null>" : tuple[i].text();
  }
  return out;
}

}  // namespace rpt
