#include "table/value.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace rpt {

Value Value::String(std::string text) {
  Value v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(text);
  return v;
}

Value Value::Number(double number) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = number;
  v.text_ = FormatNumber(number);
  return v;
}

Value Value::Parse(std::string_view text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return Null();
  if (IsNumber(trimmed)) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.number_ = ParseDoubleOr(trimmed, 0.0);
    v.text_ = trimmed;  // keep the original rendering
    return v;
  }
  return String(std::move(trimmed));
}

double Value::number() const {
  RPT_CHECK(kind_ == Kind::kNumber) << "number() on non-numeric value";
  return number_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return text_ == other.text_;
  }
  return false;
}

}  // namespace rpt
