// Tuple tokenization (paper §2.2, Fig. 4).
//
// A tuple is linearized as  [A] name-tokens [V] value-tokens  per attribute.
// Every token carries a column id (column embedding COL_c) and a token-kind
// id ([A]-name vs value vs structure), which the encoder sums into its input
// embedding. The serializer also records the token span of each attribute
// value so corruption (masking) can operate per cell.

#ifndef RPT_TABLE_SERIALIZER_H_
#define RPT_TABLE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"
#include "text/vocab.h"
#include "util/rng.h"

namespace rpt {

/// Token-level encoding of one tuple, aligned vectors of equal length.
struct TupleEncoding {
  std::vector<int32_t> ids;
  std::vector<int32_t> col_ids;
  std::vector<int32_t> type_ids;

  /// Token range [value_begin, value_end) of each column's value tokens
  /// (empty spans for null cells are recorded with begin==end).
  struct ValueSpan {
    int64_t column = 0;
    int64_t begin = 0;
    int64_t end = 0;
  };
  std::vector<ValueSpan> value_spans;

  int64_t size() const { return static_cast<int64_t>(ids.size()); }
};

/// Serialization knobs (ablated in bench/fig4_ablation).
struct SerializerOptions {
  bool use_structure_tokens = true;  // emit [A]/[V] markers
  bool include_attr_names = true;    // emit attribute-name tokens
};

class TupleSerializer {
 public:
  explicit TupleSerializer(const Vocab* vocab,
                           SerializerOptions options = {})
      : vocab_(vocab), options_(options) {}

  /// Linearizes one tuple. Null cells contribute an empty value span.
  TupleEncoding Serialize(const Schema& schema, const Tuple& tuple) const;

  /// Like Serialize but emits attributes in random order — the paper's
  /// "tuples are sets, not sequences" desideratum, used as a training
  /// augmentation so learned circuits do not depend on attribute position.
  TupleEncoding SerializeShuffled(const Schema& schema, const Tuple& tuple,
                                  Rng* rng) const;

  /// Like Serialize, but the value of `masked_column` is replaced by a
  /// single [M] token (attribute-value masking / text infilling).
  TupleEncoding SerializeWithMask(const Schema& schema, const Tuple& tuple,
                                  int64_t masked_column) const;

  /// Pair serialization for the RPT-E matcher:
  ///   [CLS] tuple_a [SEP] tuple_b
  /// Column ids restart per side; schemas may differ (schema-agnostic).
  TupleEncoding SerializePair(const Schema& schema_a, const Tuple& a,
                              const Schema& schema_b, const Tuple& b) const;

  /// Encodes a cell value as decoder target tokens (no BOS/EOS added).
  std::vector<int32_t> EncodeValue(const Value& value) const;

  const Vocab& vocab() const { return *vocab_; }
  const SerializerOptions& options() const { return options_; }

 private:
  void AppendAttribute(const std::string& name, const Value& value,
                       int64_t column, bool mask_value,
                       TupleEncoding* out) const;

  const Vocab* vocab_;
  SerializerOptions options_;
};

}  // namespace rpt

#endif  // RPT_TABLE_SERIALIZER_H_
