#include "table/serializer.h"

#include "text/tokenizer.h"
#include "util/logging.h"

namespace rpt {

namespace {

void Push(TupleEncoding* out, int32_t id, int64_t col, int32_t type) {
  out->ids.push_back(id);
  out->col_ids.push_back(static_cast<int32_t>(col));
  out->type_ids.push_back(type);
}

}  // namespace

void TupleSerializer::AppendAttribute(const std::string& name,
                                      const Value& value, int64_t column,
                                      bool mask_value,
                                      TupleEncoding* out) const {
  if (options_.include_attr_names) {
    if (options_.use_structure_tokens) {
      Push(out, SpecialTokens::kAttr, column, TokenKinds::kStructure);
    }
    for (int32_t id : Tokenizer::Encode(name, *vocab_)) {
      Push(out, id, column, TokenKinds::kAttrName);
    }
  }
  if (options_.use_structure_tokens) {
    Push(out, SpecialTokens::kValue, column, TokenKinds::kStructure);
  }
  TupleEncoding::ValueSpan span;
  span.column = column;
  span.begin = out->size();
  if (mask_value) {
    Push(out, SpecialTokens::kMask, column, TokenKinds::kStructure);
  } else if (!value.is_null()) {
    for (int32_t id : Tokenizer::Encode(value.text(), *vocab_)) {
      Push(out, id, column, TokenKinds::kValueToken);
    }
  }
  span.end = out->size();
  out->value_spans.push_back(span);
}

TupleEncoding TupleSerializer::Serialize(const Schema& schema,
                                         const Tuple& tuple) const {
  RPT_CHECK_EQ(static_cast<int64_t>(tuple.size()), schema.size());
  TupleEncoding out;
  for (int64_t c = 0; c < schema.size(); ++c) {
    AppendAttribute(schema.name(c), tuple[static_cast<size_t>(c)], c,
                    /*mask_value=*/false, &out);
  }
  return out;
}

TupleEncoding TupleSerializer::SerializeShuffled(const Schema& schema,
                                                 const Tuple& tuple,
                                                 Rng* rng) const {
  RPT_CHECK_EQ(static_cast<int64_t>(tuple.size()), schema.size());
  std::vector<int64_t> order(tuple.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  rng->Shuffle(&order);
  TupleEncoding out;
  for (int64_t c : order) {
    AppendAttribute(schema.name(c), tuple[static_cast<size_t>(c)], c,
                    /*mask_value=*/false, &out);
  }
  return out;
}

TupleEncoding TupleSerializer::SerializeWithMask(const Schema& schema,
                                                 const Tuple& tuple,
                                                 int64_t masked_column) const {
  RPT_CHECK_EQ(static_cast<int64_t>(tuple.size()), schema.size());
  RPT_CHECK(masked_column >= 0 && masked_column < schema.size());
  TupleEncoding out;
  for (int64_t c = 0; c < schema.size(); ++c) {
    AppendAttribute(schema.name(c), tuple[static_cast<size_t>(c)], c,
                    /*mask_value=*/c == masked_column, &out);
  }
  return out;
}

TupleEncoding TupleSerializer::SerializePair(const Schema& schema_a,
                                             const Tuple& a,
                                             const Schema& schema_b,
                                             const Tuple& b) const {
  TupleEncoding out;
  Push(&out, SpecialTokens::kCls, 0, TokenKinds::kStructure);
  TupleEncoding ea = Serialize(schema_a, a);
  for (int64_t i = 0; i < ea.size(); ++i) {
    Push(&out, ea.ids[static_cast<size_t>(i)],
         ea.col_ids[static_cast<size_t>(i)],
         ea.type_ids[static_cast<size_t>(i)]);
  }
  Push(&out, SpecialTokens::kSep, 0, TokenKinds::kStructure);
  TupleEncoding eb = Serialize(schema_b, b);
  for (int64_t i = 0; i < eb.size(); ++i) {
    Push(&out, eb.ids[static_cast<size_t>(i)],
         eb.col_ids[static_cast<size_t>(i)],
         eb.type_ids[static_cast<size_t>(i)]);
  }
  return out;
}

std::vector<int32_t> TupleSerializer::EncodeValue(const Value& value) const {
  if (value.is_null()) return {};
  return Tokenizer::Encode(value.text(), *vocab_);
}

}  // namespace rpt
