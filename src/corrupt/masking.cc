#include "corrupt/masking.h"

#include "util/logging.h"

namespace rpt {

const char* MaskingStrategyName(MaskingStrategy strategy) {
  switch (strategy) {
    case MaskingStrategy::kTokenMasking:
      return "token";
    case MaskingStrategy::kValueMasking:
      return "value";
    case MaskingStrategy::kFdGuided:
      return "fd-guided";
  }
  return "?";
}

MaskingPolicy::MaskingPolicy(MaskingStrategy strategy,
                             const TupleSerializer* serializer,
                             std::vector<double> column_weights)
    : strategy_(strategy),
      serializer_(serializer),
      column_weights_(std::move(column_weights)) {
  RPT_CHECK(serializer_ != nullptr);
}

std::optional<DenoisingExample> MaskingPolicy::MakeExample(
    const Schema& schema, const Tuple& tuple, Rng* rng) const {
  switch (strategy_) {
    case MaskingStrategy::kTokenMasking:
      return MakeTokenMaskExample(schema, tuple, rng);
    case MaskingStrategy::kValueMasking:
    case MaskingStrategy::kFdGuided:
      return MakeValueMaskExample(schema, tuple, rng);
  }
  return std::nullopt;
}

std::optional<DenoisingExample> MaskingPolicy::MakeValueMaskExample(
    const Schema& schema, const Tuple& tuple, Rng* rng) const {
  // Candidate columns: non-null cells.
  std::vector<double> weights(tuple.size(), 0.0);
  bool any = false;
  for (size_t c = 0; c < tuple.size(); ++c) {
    if (tuple[c].is_null()) continue;
    double w = 1.0;
    if (strategy_ == MaskingStrategy::kFdGuided &&
        c < column_weights_.size()) {
      // Bias toward determined columns but keep a floor so every column
      // is occasionally exercised.
      w = 0.05 + column_weights_[c];
    }
    weights[c] = w;
    any = true;
  }
  if (!any) return std::nullopt;
  const int64_t column = static_cast<int64_t>(rng->WeightedIndex(weights));

  DenoisingExample out;
  out.masked_column = column;
  out.corrupted = serializer_->SerializeWithMask(schema, tuple, column);
  out.target =
      serializer_->EncodeValue(tuple[static_cast<size_t>(column)]);
  return out;
}

std::optional<DenoisingExample> MaskingPolicy::MakeTokenMaskExample(
    const Schema& schema, const Tuple& tuple, Rng* rng) const {
  TupleEncoding full = serializer_->Serialize(schema, tuple);
  // Collect positions of value tokens (attribute names are never masked).
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < full.size(); ++i) {
    if (full.type_ids[static_cast<size_t>(i)] == TokenKinds::kValueToken) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return std::nullopt;
  const int64_t pos = candidates[rng->UniformInt(candidates.size())];

  DenoisingExample out;
  out.target = {full.ids[static_cast<size_t>(pos)]};
  out.corrupted = std::move(full);
  out.corrupted.ids[static_cast<size_t>(pos)] = SpecialTokens::kMask;
  out.corrupted.type_ids[static_cast<size_t>(pos)] = TokenKinds::kStructure;
  out.masked_column = out.corrupted.col_ids[static_cast<size_t>(pos)];
  return out;
}

}  // namespace rpt
