// Corruption policies for denoising pre-training (paper §2.2).
//
//   * Token masking — replace one token inside an attribute value with [M].
//   * Attribute-value masking — replace a whole cell with a single [M]
//     (text infilling: the model must also learn *how many* tokens the
//     span hides).
//   * FD-guided masking — like value masking, but the masked column is
//     sampled proportionally to its determinedness (profiled FDs/NMI), so
//     the model is asked to predict values its context actually determines.

#ifndef RPT_CORRUPT_MASKING_H_
#define RPT_CORRUPT_MASKING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "table/serializer.h"
#include "table/table.h"
#include "util/rng.h"

namespace rpt {

enum class MaskingStrategy {
  kTokenMasking,
  kValueMasking,
  kFdGuided,
};

const char* MaskingStrategyName(MaskingStrategy strategy);

/// One denoising training example: a corrupted encoder input and the token
/// ids the decoder must reconstruct (the masked span, no BOS/EOS).
struct DenoisingExample {
  TupleEncoding corrupted;
  std::vector<int32_t> target;
  int64_t masked_column = -1;
};

class MaskingPolicy {
 public:
  /// `column_weights` (optional, one per column) biases which column is
  /// masked; used by kFdGuided. Unweighted strategies ignore it.
  MaskingPolicy(MaskingStrategy strategy, const TupleSerializer* serializer,
                std::vector<double> column_weights = {});

  /// Builds one denoising example from a tuple, or nullopt when the tuple
  /// has nothing maskable (all cells null).
  std::optional<DenoisingExample> MakeExample(const Schema& schema,
                                              const Tuple& tuple,
                                              Rng* rng) const;

  MaskingStrategy strategy() const { return strategy_; }

 private:
  std::optional<DenoisingExample> MakeValueMaskExample(const Schema& schema,
                                                       const Tuple& tuple,
                                                       Rng* rng) const;
  std::optional<DenoisingExample> MakeTokenMaskExample(const Schema& schema,
                                                       const Tuple& tuple,
                                                       Rng* rng) const;

  MaskingStrategy strategy_;
  const TupleSerializer* serializer_;
  std::vector<double> column_weights_;
};

}  // namespace rpt

#endif  // RPT_CORRUPT_MASKING_H_
