// Dirt channels: realistic cell-level noise used both to make the synthetic
// benchmarks hard (surface variation between matching entities) and to test
// robustness of pre-training on dirty tables (paper §2.2 opportunity O2).

#ifndef RPT_CORRUPT_DIRT_H_
#define RPT_CORRUPT_DIRT_H_

#include <string>

#include "table/table.h"
#include "util/rng.h"

namespace rpt {

/// One random character-level typo: swap, delete, insert, or replace.
/// Strings shorter than 2 characters are returned unchanged.
std::string InjectTypo(const std::string& text, Rng* rng);

/// Drops one random word (no-op for single-word strings).
std::string DropWord(const std::string& text, Rng* rng);

/// Duplicates one random word.
std::string DuplicateWord(const std::string& text, Rng* rng);

/// Uppercases the string (case noise; downstream tokenization lowercases,
/// so this exercises normalization, not the model).
std::string ShoutCase(const std::string& text);

/// Statistics of an ApplyDirt pass.
struct DirtReport {
  int64_t cells_seen = 0;
  int64_t cells_nulled = 0;
  int64_t cells_typoed = 0;
  int64_t cells_word_dropped = 0;
};

struct DirtOptions {
  double cell_rate = 0.1;      // fraction of cells touched
  double null_share = 0.4;     // of touched cells: null out
  double typo_share = 0.4;     // of touched cells: inject a typo
  // The remainder drops a word (strings) or jitters the value (numbers).
  double numeric_jitter = 0.15;  // relative jitter for numeric cells
};

/// Corrupts cells of `table` in place and reports what was done.
DirtReport ApplyDirt(Table* table, const DirtOptions& options, Rng* rng);

}  // namespace rpt

#endif  // RPT_CORRUPT_DIRT_H_
