#include "corrupt/dirt.h"

#include <cctype>

#include "util/string_util.h"

namespace rpt {

std::string InjectTypo(const std::string& text, Rng* rng) {
  if (text.size() < 2) return text;
  std::string out = text;
  const size_t pos = rng->UniformInt(out.size() - 1);
  switch (rng->UniformInt(4)) {
    case 0:  // swap adjacent
      std::swap(out[pos], out[pos + 1]);
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert a nearby lowercase letter
      out.insert(pos, 1,
                 static_cast<char>('a' + rng->UniformInt(26)));
      break;
    default:  // replace
      out[pos] = static_cast<char>('a' + rng->UniformInt(26));
      break;
  }
  return out;
}

std::string DropWord(const std::string& text, Rng* rng) {
  auto words = SplitWhitespace(text);
  if (words.size() < 2) return text;
  words.erase(words.begin() +
              static_cast<int64_t>(rng->UniformInt(words.size())));
  return Join(words, " ");
}

std::string DuplicateWord(const std::string& text, Rng* rng) {
  auto words = SplitWhitespace(text);
  if (words.empty()) return text;
  const size_t pos = rng->UniformInt(words.size());
  words.insert(words.begin() + static_cast<int64_t>(pos), words[pos]);
  return Join(words, " ");
}

std::string ShoutCase(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

DirtReport ApplyDirt(Table* table, const DirtOptions& options, Rng* rng) {
  DirtReport report;
  for (int64_t r = 0; r < table->NumRows(); ++r) {
    for (int64_t c = 0; c < table->NumColumns(); ++c) {
      ++report.cells_seen;
      const Value& v = table->at(r, c);
      if (v.is_null()) continue;
      if (!rng->Bernoulli(options.cell_rate)) continue;
      const double which = rng->UniformDouble();
      if (which < options.null_share) {
        table->Set(r, c, Value::Null());
        ++report.cells_nulled;
      } else if (which < options.null_share + options.typo_share) {
        if (v.is_number()) {
          const double jitter =
              1.0 + options.numeric_jitter * (rng->UniformDouble() * 2 - 1);
          table->Set(r, c, Value::Number(v.number() * jitter));
        } else {
          table->Set(r, c, Value::String(InjectTypo(v.text(), rng)));
        }
        ++report.cells_typoed;
      } else {
        if (v.is_number()) {
          const double jitter =
              1.0 + options.numeric_jitter * (rng->UniformDouble() * 2 - 1);
          table->Set(r, c, Value::Number(v.number() * jitter));
          ++report.cells_typoed;
        } else {
          table->Set(r, c, Value::String(DropWord(v.text(), rng)));
          ++report.cells_word_dropped;
        }
      }
    }
  }
  return report;
}

}  // namespace rpt
