#include "profile/perf_hooks.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace rpt {

namespace {

std::atomic<bool> g_hook_installed{false};
std::mutex g_hook_mu;
// Shared so an emit racing a SetStageTimingHook keeps a live copy.
std::shared_ptr<const StageTimingHook> g_hook;

}  // namespace

void SetStageTimingHook(StageTimingHook hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  if (hook) {
    g_hook = std::make_shared<const StageTimingHook>(std::move(hook));
    g_hook_installed.store(true, std::memory_order_release);
  } else {
    g_hook_installed.store(false, std::memory_order_release);
    g_hook.reset();
  }
}

bool StageTimingHookInstalled() {
  return g_hook_installed.load(std::memory_order_acquire);
}

void EmitStageTiming(const char* stage, StageClock::time_point begin,
                     StageClock::time_point end) {
  std::shared_ptr<const StageTimingHook> hook;
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    hook = g_hook;
  }
  if (hook) (*hook)(stage, begin, end);
}

}  // namespace rpt
