// Data profiling: approximate functional-dependency discovery and
// CORDS-style soft-dependency scores (paper §2.2, "Attribute Value
// Masking": mask the attributes that are determined by other attributes).
//
// FD quality uses the standard g3 error: the minimum fraction of tuples
// that must be removed for X -> A to hold exactly. Soft dependencies are
// scored with normalized mutual information between column pairs.

#ifndef RPT_PROFILE_PROFILER_H_
#define RPT_PROFILE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"

namespace rpt {

/// An (approximate) functional dependency lhs -> rhs.
struct FunctionalDependency {
  std::vector<int64_t> lhs;  // determinant column indices (sorted)
  int64_t rhs = 0;           // dependent column index
  double g3_error = 0.0;     // fraction of violating tuples

  std::string ToString(const Schema& schema) const;
};

struct ProfilerOptions {
  int64_t max_lhs_size = 2;     // consider single and pair determinants
  double max_g3_error = 0.05;   // report FDs at most this dirty
  int64_t min_rows = 3;         // below this, report nothing
};

/// g3 error of lhs -> rhs on `table`: 1 - (sum over lhs-groups of the
/// modal rhs count) / N. Rows with a null rhs are ignored.
double FdError(const Table& table, const std::vector<int64_t>& lhs,
               int64_t rhs);

/// Enumerates approximate FDs up to options.max_lhs_size, pruned: a pair
/// LHS is only reported when no subset already determines the same RHS
/// within the error budget (minimal FDs only).
std::vector<FunctionalDependency> DiscoverFds(
    const Table& table, const ProfilerOptions& options = {});

/// Normalized mutual information NMI(X;Y) in [0, 1] between two columns
/// (1 = fully dependent, 0 = independent). Null cells participate as a
/// distinct value.
double NormalizedMutualInformation(const Table& table, int64_t col_x,
                                   int64_t col_y);

/// Per-column "determinedness" weights in [0, 1]: how strongly each column
/// is implied by the rest of the tuple. Combines the best FD (1 - g3) and
/// the best pairwise NMI. Used by FD-guided masking.
std::vector<double> ColumnDeterminedness(
    const Table& table, const ProfilerOptions& options = {});

/// Number of distinct non-null values in a column.
int64_t DistinctCount(const Table& table, int64_t col);

/// Fraction of null cells in a column.
double NullFraction(const Table& table, int64_t col);

}  // namespace rpt

#endif  // RPT_PROFILE_PROFILER_H_
