// Stage-timing hooks: how the model layer reports where time goes without
// depending on the observability layer.
//
// nn/ code brackets its hot entry points (encode, prefill, per-step decode)
// with ScopedStageTiming; when a hook is installed — src/obs's stage
// exporter routes timings into the metrics registry and the active trace —
// each scope emits (stage name, steady-clock begin, steady-clock end).
// When no hook is installed, a scope costs one relaxed atomic load and
// never reads the clock, so the library stays dependency-free and cheap
// for training and offline use.

#ifndef RPT_PROFILE_PERF_HOOKS_H_
#define RPT_PROFILE_PERF_HOOKS_H_

#include <chrono>
#include <functional>

namespace rpt {

using StageClock = std::chrono::steady_clock;

/// Receives one timed stage. Called from whichever thread ran the stage;
/// implementations must be thread-safe. `stage` is a string literal.
using StageTimingHook = std::function<void(
    const char* stage, StageClock::time_point begin,
    StageClock::time_point end)>;

/// Installs (or, with nullptr, clears) the process-wide hook.
void SetStageTimingHook(StageTimingHook hook);

/// One relaxed atomic load; the fast-path guard.
bool StageTimingHookInstalled();

/// Invokes the installed hook, if any.
void EmitStageTiming(const char* stage, StageClock::time_point begin,
                     StageClock::time_point end);

/// RAII stage scope. Reads the clock only when a hook is installed at
/// construction time.
class ScopedStageTiming {
 public:
  explicit ScopedStageTiming(const char* stage)
      : stage_(StageTimingHookInstalled() ? stage : nullptr) {
    if (stage_ != nullptr) begin_ = StageClock::now();
  }
  ~ScopedStageTiming() {
    if (stage_ != nullptr) EmitStageTiming(stage_, begin_, StageClock::now());
  }

  ScopedStageTiming(const ScopedStageTiming&) = delete;
  ScopedStageTiming& operator=(const ScopedStageTiming&) = delete;

 private:
  const char* stage_;
  StageClock::time_point begin_;
};

}  // namespace rpt

#endif  // RPT_PROFILE_PERF_HOOKS_H_
