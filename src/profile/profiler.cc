#include "profile/profiler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace rpt {

namespace {

// A stable string key for a cell (distinguishes null from empty string).
std::string CellKey(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return "\x01null";
    case Value::Kind::kNumber:
      return "\x02" + std::to_string(v.number());
    case Value::Kind::kString:
      return "\x03" + v.text();
  }
  return "";
}

std::string GroupKey(const Tuple& row, const std::vector<int64_t>& cols) {
  std::string key;
  for (int64_t c : cols) {
    key += CellKey(row[static_cast<size_t>(c)]);
    key += '\x1F';
  }
  return key;
}

}  // namespace

std::string FunctionalDependency::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(lhs[i]);
  }
  out += "} -> ";
  out += schema.name(rhs);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " (g3=%.3f)", g3_error);
  out += buf;
  return out;
}

double FdError(const Table& table, const std::vector<int64_t>& lhs,
               int64_t rhs) {
  RPT_CHECK(!lhs.empty());
  // group key -> (rhs value key -> count)
  std::unordered_map<std::string, std::unordered_map<std::string, int64_t>>
      groups;
  int64_t active = 0;
  for (int64_t r = 0; r < table.NumRows(); ++r) {
    const Tuple& row = table.row(r);
    if (row[static_cast<size_t>(rhs)].is_null()) continue;
    ++active;
    groups[GroupKey(row, lhs)][CellKey(row[static_cast<size_t>(rhs)])]++;
  }
  if (active == 0) return 0.0;
  int64_t kept = 0;
  for (const auto& [key, counts] : groups) {
    int64_t best = 0;
    for (const auto& [value, count] : counts) best = std::max(best, count);
    kept += best;
  }
  return 1.0 - static_cast<double>(kept) / static_cast<double>(active);
}

std::vector<FunctionalDependency> DiscoverFds(
    const Table& table, const ProfilerOptions& options) {
  std::vector<FunctionalDependency> out;
  const int64_t cols = table.NumColumns();
  if (table.NumRows() < options.min_rows || cols < 2) return out;

  // Track which (rhs) columns are already determined by a single column so
  // pair LHSes can be pruned to minimal FDs.
  std::vector<std::vector<bool>> single_holds(
      static_cast<size_t>(cols), std::vector<bool>(static_cast<size_t>(cols),
                                                   false));
  for (int64_t a = 0; a < cols; ++a) {
    // Skip trivially-unique determinants? No: a key column legitimately
    // determines everything; the masking policy wants exactly that signal.
    for (int64_t b = 0; b < cols; ++b) {
      if (a == b) continue;
      const double err = FdError(table, {a}, b);
      if (err <= options.max_g3_error) {
        single_holds[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
        out.push_back({{a}, b, err});
      }
    }
  }
  if (options.max_lhs_size >= 2) {
    for (int64_t a = 0; a < cols; ++a) {
      for (int64_t b = a + 1; b < cols; ++b) {
        for (int64_t c = 0; c < cols; ++c) {
          if (c == a || c == b) continue;
          // Minimality: skip when a subset already determines c.
          if (single_holds[static_cast<size_t>(a)][static_cast<size_t>(c)] ||
              single_holds[static_cast<size_t>(b)][static_cast<size_t>(c)]) {
            continue;
          }
          const double err = FdError(table, {a, b}, c);
          if (err <= options.max_g3_error) {
            out.push_back({{a, b}, c, err});
          }
        }
      }
    }
  }
  return out;
}

double NormalizedMutualInformation(const Table& table, int64_t col_x,
                                   int64_t col_y) {
  const int64_t n = table.NumRows();
  if (n == 0) return 0.0;
  std::unordered_map<std::string, int64_t> px, py;
  std::unordered_map<std::string, int64_t> pxy;
  for (int64_t r = 0; r < n; ++r) {
    const std::string kx = CellKey(table.at(r, col_x));
    const std::string ky = CellKey(table.at(r, col_y));
    ++px[kx];
    ++py[ky];
    ++pxy[kx + '\x1F' + ky];
  }
  auto entropy = [n](const std::unordered_map<std::string, int64_t>& counts) {
    double h = 0.0;
    for (const auto& [key, count] : counts) {
      const double p = static_cast<double>(count) / n;
      h -= p * std::log2(p);
    }
    return h;
  };
  const double hx = entropy(px);
  const double hy = entropy(py);
  const double hxy = entropy(pxy);
  const double mi = hx + hy - hxy;
  const double denom = std::min(hx, hy);
  if (denom <= 1e-12) return 0.0;  // a constant column carries no signal
  return std::max(0.0, std::min(1.0, mi / denom));
}

std::vector<double> ColumnDeterminedness(const Table& table,
                                         const ProfilerOptions& options) {
  const int64_t cols = table.NumColumns();
  std::vector<double> weights(static_cast<size_t>(cols), 0.0);
  if (table.NumRows() < options.min_rows) return weights;
  // Best single-column FD strength per RHS.
  for (int64_t a = 0; a < cols; ++a) {
    for (int64_t b = 0; b < cols; ++b) {
      if (a == b) continue;
      const double strength = 1.0 - FdError(table, {a}, b);
      weights[static_cast<size_t>(b)] =
          std::max(weights[static_cast<size_t>(b)], strength);
    }
  }
  // Blend in pairwise NMI (captures soft, non-functional correlation).
  for (int64_t a = 0; a < cols; ++a) {
    for (int64_t b = 0; b < cols; ++b) {
      if (a == b) continue;
      const double nmi = NormalizedMutualInformation(table, a, b);
      weights[static_cast<size_t>(b)] =
          std::max(weights[static_cast<size_t>(b)], nmi);
    }
  }
  return weights;
}

int64_t DistinctCount(const Table& table, int64_t col) {
  std::unordered_map<std::string, int64_t> counts;
  for (int64_t r = 0; r < table.NumRows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;
    ++counts[CellKey(v)];
  }
  return static_cast<int64_t>(counts.size());
}

double NullFraction(const Table& table, int64_t col) {
  if (table.NumRows() == 0) return 0.0;
  int64_t nulls = 0;
  for (int64_t r = 0; r < table.NumRows(); ++r) {
    nulls += table.at(r, col).is_null();
  }
  return static_cast<double>(nulls) / table.NumRows();
}

}  // namespace rpt
