// RPT-I information extraction (paper Fig. 1(c) / Fig. 6).
//
// A requester provides ONE example (s1: a text-rich tuple whose label is
// "8gb"). PET interprets the task ("what is the memory"), the extractor is
// trained on synthetic QA spans, and new tasks (t1) are answered by span
// extraction — mirroring the crowdsourcing workflow the paper describes.

#include <cstdio>

#include "eval/metrics.h"
#include "rpt/extractor.h"
#include "rpt/pet.h"
#include "rpt/vocab_builder.h"
#include "synth/ie_tasks.h"
#include "synth/universe.h"

namespace {

using namespace rpt;  // example code; the library itself never does this

}  // namespace

int main() {
  std::printf("RPT-I: information extraction as question answering\n\n");
  ProductUniverse universe(150, 99);

  // The requester's single example s1.
  auto seed_examples = GenerateIeExamples(universe, "memory", 1, 3);
  const IeExample& s1 = seed_examples.front();
  std::printf("s1 (example): type=%s\n    description=\"%s\"\n"
              "    label=\"%s\"\n\n",
              s1.category.c_str(), s1.description.c_str(),
              s1.label.c_str());

  // PET one-shot task interpretation: label -> attribute -> question.
  const std::string attribute = InferQuestionAttribute(s1.label);
  const std::string question = BuildQuestion(attribute);
  std::printf("PET interpretation: \"%s\" (template: what is the [M])\n\n",
              question.c_str());

  // Train the span extractor on synthetic QA data for this attribute.
  auto training = GenerateIeExamples(universe, attribute, 80, 17);
  std::vector<QaExample> qa;
  for (const auto& ex : training) {
    qa.push_back({question, ex.description, ex.label});
  }
  std::vector<std::string> texts = {question};
  for (const auto& ex : qa) texts.push_back(ex.paragraph);
  ExtractorConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 5;
  RptExtractor extractor(config, BuildVocabFromTexts(texts));
  std::printf("training span heads on %zu QA examples...\n", qa.size());
  const double loss = extractor.Train(qa, 300);
  std::printf("final QA loss: %.3f\n\n", loss);

  // Worker tasks t1..t5: extract from unseen tuples.
  auto tasks = GenerateIeExamples(universe, attribute, 5, 1234);
  double f1_sum = 0;
  int exact = 0;
  for (const auto& task : tasks) {
    const std::string answer =
        extractor.Extract(question, task.description);
    const double f1 = TokenF1(answer, task.label);
    f1_sum += f1;
    exact += NormalizedExactMatch(answer, task.label);
    std::printf("t: \"%s\"\n   gold=\"%s\"  predicted=\"%s\"  (F1 %.2f)\n",
                task.description.c_str(), task.label.c_str(),
                answer.c_str(), f1);
  }
  std::printf("\nexact match %d/%zu, mean token F1 %.2f\n", exact,
              tasks.size(), f1_sum / static_cast<double>(tasks.size()));
  return 0;
}
