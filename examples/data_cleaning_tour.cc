// A tour of the RPT-C cleaning toolkit on a product catalog:
// profiling (FDs / soft dependencies), dirt injection, unsupervised
// pre-training, error detection, and auto-completion.

#include <cstdio>

#include "corrupt/dirt.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "profile/profiler.h"
#include "rpt/cleaner.h"
#include "rpt/vocab_builder.h"
#include "synth/benchmarks.h"
#include "synth/universe.h"

namespace {

using namespace rpt;  // example code; the library itself never does this

}  // namespace

int main() {
  std::printf("RPT-C data-cleaning tour\n\n");

  // A clean product catalog.
  ProductUniverse universe(250, 7);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < 250; ++i) ids.push_back(i);
  RenderProfile profile;
  profile.missing_prob = 0.0;
  profile.typo_prob = 0.0;
  Table catalog = GenerateCleaningTable(
      universe, ids, {"title", "manufacturer", "category", "year"},
      profile, 13);

  // ---- 1. Profile the table ------------------------------------------------
  std::printf("[profile] approximate FDs (g3 <= 0.05):\n");
  ProfilerOptions options;
  for (const auto& fd : DiscoverFds(catalog, options)) {
    if (fd.lhs.size() == 1) {
      std::printf("   %s\n", fd.ToString(catalog.schema()).c_str());
    }
  }
  auto weights = ColumnDeterminedness(catalog);
  std::printf("[profile] column determinedness (masking weights):\n");
  for (int64_t c = 0; c < catalog.NumColumns(); ++c) {
    std::printf("   %-12s %.2f\n", catalog.schema().name(c).c_str(),
                weights[static_cast<size_t>(c)]);
  }

  // ---- 2. Pre-train the cleaner --------------------------------------------
  CleanerConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.masking = MaskingStrategy::kFdGuided;
  config.seed = 23;
  RptCleaner cleaner(config, BuildVocabFromTables({&catalog}));
  std::printf("\n[pretrain] FD-guided attribute-value masking...\n");
  const double loss = cleaner.PretrainOnTables({&catalog}, 500);
  std::printf("[pretrain] final loss %.3f\n", loss);

  // ---- 3. Corrupt a copy and repair it --------------------------------------
  Table dirty = catalog;
  Rng rng(99);
  DirtOptions dirt;
  dirt.cell_rate = 0.08;
  dirt.null_share = 1.0;  // only null-outs, so ground truth is recoverable
  DirtReport report = ApplyDirt(&dirty, dirt, &rng);
  std::printf("\n[dirt] nulled %lld of %lld cells\n",
              static_cast<long long>(report.cells_nulled),
              static_cast<long long>(report.cells_seen));

  int64_t repaired = 0, correct = 0;
  for (int64_t r = 0; r < dirty.NumRows(); ++r) {
    for (int64_t c = 0; c < dirty.NumColumns(); ++c) {
      if (!dirty.at(r, c).is_null() || catalog.at(r, c).is_null()) continue;
      Value predicted = cleaner.PredictValue(dirty.schema(), dirty.row(r),
                                             c);
      ++repaired;
      correct += NormalizedExactMatch(predicted.text(),
                                      catalog.at(r, c).text());
    }
  }
  std::printf("[repair] exact-match %lld / %lld null repairs\n",
              static_cast<long long>(correct),
              static_cast<long long>(repaired));

  // ---- 4. Error detection ----------------------------------------------------
  Table poisoned{catalog.schema()};
  for (int64_t r = 0; r < 10; ++r) poisoned.AddRow(catalog.row(r));
  // Swap two categories (classic wrong-cell errors).
  poisoned.Set(0, 2, Value::String("headphones"));
  poisoned.Set(1, 2, Value::String("printer"));
  auto errors = cleaner.DetectErrors(poisoned);
  std::printf("\n[detect] %zu suspicious cells in the poisoned sample "
              "(2 injected):\n",
              errors.size());
  for (const auto& e : errors) {
    if (e.column != 2) continue;
    std::printf("   row %lld %s: observed '%s', model suggests '%s'\n",
                static_cast<long long>(e.row),
                poisoned.schema().name(e.column).c_str(),
                e.observed.c_str(), e.predicted.c_str());
  }
  std::printf("\nTour complete.\n");
  return 0;
}
