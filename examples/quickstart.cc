// Quickstart: the paper's Fig. 1(a) data-cleaning scenario.
//
// Two different "Michael Jordan"s live in one table; which city is right
// depends on the expertise column. RPT-C pre-trains unsupervised on the
// table (attribute-value masking) and then answers:
//   Q1: (Michael Jordan, Machine Learning, [M]) -> Berkeley
//   Q2: (Michael Jordan, Basketball,       [M]) -> Chicago
//   Q3: (Michael [M], CSAIL MIT)                -> last-name completion
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "rpt/cleaner.h"
#include "rpt/vocab_builder.h"
#include "table/table.h"

namespace {

using rpt::CleanerConfig;
using rpt::RptCleaner;
using rpt::Schema;
using rpt::Table;
using rpt::Tuple;
using rpt::Value;

Table PeopleTable() {
  Table t{Schema({"name", "expertise", "city"})};
  // Many observations of each fact, as a real data lake would provide.
  for (int i = 0; i < 8; ++i) {
    t.AddRow({Value::String("michael jordan"),
              Value::String("machine learning"),
              Value::String("berkeley")});
    t.AddRow({Value::String("michael jordan"), Value::String("basketball"),
              Value::String("chicago")});
    t.AddRow({Value::String("michael cafarella"),
              Value::String("databases"), Value::String("ann arbor")});
    t.AddRow({Value::String("sam madden"), Value::String("databases"),
              Value::String("cambridge")});
    t.AddRow({Value::String("geoff hinton"),
              Value::String("machine learning"),
              Value::String("toronto")});
  }
  return t;
}

void Ask(const RptCleaner& cleaner, const Table& table, Tuple query,
         int64_t masked_column, const char* label) {
  Value predicted =
      cleaner.PredictValue(table.schema(), query, masked_column);
  std::printf("%-40s -> %s\n", label, predicted.text().c_str());
}

}  // namespace

int main() {
  std::printf("RPT quickstart: learning to clean Fig. 1(a)\n\n");
  Table table = PeopleTable();

  CleanerConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.batch_size = 8;
  config.learning_rate = 3e-3f;
  config.seed = 7;

  RptCleaner cleaner(config, rpt::BuildVocabFromTables({&table}));
  std::printf("pre-training on %lld tuples (unsupervised)...\n",
              static_cast<long long>(table.NumRows()));
  const double loss = cleaner.PretrainOnTables({&table}, 500);
  std::printf("final denoising loss: %.3f\n\n", loss);

  // Q1/Q2: data repairing — same name, different expertise.
  Ask(cleaner, table,
      {Value::String("michael jordan"), Value::String("machine learning"),
       Value::Null()},
      2, "Q1 city of ML Michael Jordan");
  Ask(cleaner, table,
      {Value::String("michael jordan"), Value::String("basketball"),
       Value::Null()},
      2, "Q2 city of Basketball Michael Jordan");

  // Q3: auto-completion — who works on databases in ann arbor?
  Ask(cleaner, table,
      {Value::Null(), Value::String("databases"),
       Value::String("ann arbor")},
      0, "Q3 name of Ann Arbor DB researcher");

  std::printf("\nDone. See examples/er_pipeline and examples/ie_extraction"
              " for RPT-E and RPT-I.\n");
  return 0;
}
