// The §5 "call to arms" tasks in one walkthrough:
//   1. data annotation    — type the columns of a headerless table;
//   2. transformation     — learn a format rule from examples and apply it;
//   3. hybrid cleaning    — numeric outlier detection + dictionary-
//                           constrained repair on top of RPT-C.

#include <cstdio>
#include <unordered_map>

#include "rpt/annotator.h"
#include "rpt/hybrid_cleaner.h"
#include "rpt/value_transform.h"
#include "rpt/vocab_builder.h"
#include "synth/column_examples.h"
#include "synth/transform_tasks.h"
#include "synth/universe.h"
#include "text/tokenizer.h"

namespace {

using namespace rpt;  // example code; the library itself never does this

}  // namespace

int main() {
  std::printf("RPT data-preparation suite (the paper's §5 tasks)\n");

  // ---- 1. Data annotation ---------------------------------------------------
  std::printf("\n[1] column-type annotation on a headerless table\n");
  ProductUniverse universe(120, 4100);
  auto labeled = GenerateLabeledColumns(universe, 10, 5, 3);
  const auto type_names = ColumnTypeNames();
  std::unordered_map<std::string, int32_t> type_index;
  for (size_t i = 0; i < type_names.size(); ++i) {
    type_index[type_names[i]] = static_cast<int32_t>(i);
  }
  std::vector<ColumnExample> train;
  std::unordered_map<std::string, int64_t> counts;
  for (const auto& c : labeled) {
    train.push_back({c.values, type_index[c.type]});
    for (const auto& v : c.values) Tokenizer::CountTokens(v, &counts);
  }
  AnnotatorConfig annotator_config;
  annotator_config.d_model = 48;
  annotator_config.num_heads = 2;
  annotator_config.num_layers = 2;
  annotator_config.dropout = 0.0f;
  ColumnAnnotator annotator(annotator_config, Vocab::Build(counts, 2),
                            type_names);
  annotator.Train(train, 200);

  Table mystery{Schema({"c0", "c1", "c2"})};
  mystery.AddRow({Value::String("apple iphone 10 pro"),
                  Value::String("apple inc"), Value::Parse("2017")});
  mystery.AddRow({Value::String("dell xps 15"), Value::String("dell"),
                  Value::Parse("2019")});
  mystery.AddRow({Value::String("sony alpha 7"), Value::String("sony corp"),
                  Value::Parse("2018")});
  auto annotations = annotator.AnnotateTable(mystery);
  for (size_t c = 0; c < annotations.size(); ++c) {
    std::printf("    column %zu -> %s\n", c, annotations[c].c_str());
  }

  // ---- 2. Transformation by example ------------------------------------------
  std::printf("\n[2] transformation by example: (212) 555-0147 style ->"
              " 212-555-0147\n");
  ValueTransformerConfig transform_config;
  transform_config.d_model = 48;
  transform_config.num_heads = 2;
  transform_config.num_layers = 2;
  ValueTransformer transformer(transform_config);
  transformer.Train(GeneratePhonePairs(200, 7), 550);
  for (const auto& [input, expected] : GeneratePhonePairs(3, 424242)) {
    std::printf("    %s -> %s   (expected %s)\n", input.c_str(),
                transformer.Apply(input).c_str(), expected.c_str());
  }

  // ---- 3. Hybrid cleaning ------------------------------------------------------
  std::printf("\n[3] hybrid cleaning: outliers + constrained repair\n");
  Table catalog{Schema({"brand", "country", "price"})};
  const std::vector<std::pair<std::string, std::string>> brands = {
      {"apple", "usa"}, {"sony", "japan"}, {"dell", "texas"}};
  double price = 100;
  for (int r = 0; r < 8; ++r) {
    for (const auto& [brand, country] : brands) {
      catalog.AddRow({Value::String(brand), Value::String(country),
                      Value::Number(price)});
      price += 2;
    }
  }
  CleanerConfig cleaner_config;
  cleaner_config.d_model = 48;
  cleaner_config.num_layers = 2;
  cleaner_config.num_heads = 2;
  cleaner_config.dropout = 0.0f;
  cleaner_config.batch_size = 8;
  cleaner_config.learning_rate = 3e-3f;
  RptCleaner cleaner(cleaner_config, BuildVocabFromTables({&catalog}));
  cleaner.PretrainOnTables({&catalog}, 300);
  HybridCleaner hybrid(&cleaner);

  Table dirty = catalog;
  dirty.Set(0, 2, Value::Number(99999));          // numeric outlier
  dirty.Set(1, 1, Value::String("japann"));       // typo'd category value
  auto errors = hybrid.DetectErrors(dirty);
  std::printf("    %zu suspicious cells found (2 injected)\n",
              errors.size());
  Tuple probe = {Value::String("sony"), Value::Null(),
                 Value::Number(120)};
  std::printf("    constrained repair of sony's country -> %s\n",
              hybrid.RepairCell(catalog, probe, 1).text().c_str());
  std::printf("\nSuite complete.\n");
  return 0;
}
