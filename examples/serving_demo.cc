// Serving demo: RPT-C behind the concurrent inference server.
//
// Pre-trains a tiny cleaner on the Fig. 1(a) table (see quickstart.cc),
// wraps it in a CleanerSession, and serves masked-cell queries from four
// concurrent client threads through the micro-batching InferenceServer —
// the interactive human-in-the-loop shape the paper describes, at
// many-users scale. Repeated queries hit the LRU cache; the run ends with
// the server's stats block.
//
// Build & run:  cmake -B build && cmake --build build &&
//               ./build/examples/serving_demo

#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpt/cleaner.h"
#include "rpt/vocab_builder.h"
#include "serve/server.h"
#include "serve/sessions.h"
#include "table/table.h"

namespace {

using rpt::CleanerSession;
using rpt::InferenceServer;
using rpt::RptCleaner;
using rpt::Schema;
using rpt::ServeResponse;
using rpt::ServerConfig;
using rpt::Table;
using rpt::Tuple;
using rpt::Value;

Table PeopleTable() {
  Table t{Schema({"name", "expertise", "city"})};
  for (int i = 0; i < 8; ++i) {
    t.AddRow({Value::String("michael jordan"),
              Value::String("machine learning"),
              Value::String("berkeley")});
    t.AddRow({Value::String("michael jordan"), Value::String("basketball"),
              Value::String("chicago")});
    t.AddRow({Value::String("michael cafarella"),
              Value::String("databases"), Value::String("ann arbor")});
    t.AddRow({Value::String("sam madden"), Value::String("databases"),
              Value::String("cambridge")});
    t.AddRow({Value::String("geoff hinton"),
              Value::String("machine learning"),
              Value::String("toronto")});
  }
  return t;
}

}  // namespace

int main() {
  std::printf("RPT serving demo: concurrent cell prediction\n\n");
  Table table = PeopleTable();

  rpt::CleanerConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.batch_size = 8;
  config.learning_rate = 3e-3f;
  config.seed = 7;
  RptCleaner cleaner(config, rpt::BuildVocabFromTables({&table}));
  std::printf("pre-training RPT-C on the table ...\n");
  cleaner.PretrainOnTables({&table}, 400);

  auto session = std::make_shared<CleanerSession>(&cleaner, table.schema());
  ServerConfig server_config;
  server_config.max_batch_size = 8;
  server_config.max_batch_delay = std::chrono::microseconds(2000);
  server_config.cache_capacity = 64;
  InferenceServer server(session, server_config);

  // Four concurrent "users" each ask for the city of several people; the
  // queries overlap, so later ones ride the cache.
  const std::vector<std::pair<std::string, std::string>> people = {
      {"michael jordan", "machine learning"},
      {"michael jordan", "basketball"},
      {"sam madden", "databases"},
      {"geoff hinton", "machine learning"},
  };
  std::mutex print_mu;
  std::vector<std::thread> clients;
  for (int user = 0; user < 4; ++user) {
    clients.emplace_back([&, user] {
      for (size_t q = 0; q < people.size(); ++q) {
        const auto& [name, expertise] = people[(user + q) % people.size()];
        Tuple query = {Value::String(name), Value::String(expertise),
                       Value::Null()};
        ServeResponse r = server.SubmitWait(
            CleanerSession::FormatCellQuery(query, 2));
        std::lock_guard<std::mutex> lock(print_mu);
        if (r.status.ok()) {
          std::printf("user %d: (%s, %s, [M]) -> %-12s %s\n", user,
                      name.c_str(), expertise.c_str(), r.output.c_str(),
                      r.cache_hit ? "[cache]" : "");
        } else {
          std::printf("user %d: request failed: %s\n", user,
                      r.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  server.Shutdown();
  std::printf("\n");
  server.PrintStats();
  return 0;
}
