// End-to-end RPT-E entity-resolution pipeline (paper Fig. 5):
//
//   blocker -> matcher -> transitive-closure clustering
//           -> conflict detection (+ oracle resolution)
//           -> golden-record consolidation
//
// Runs on a synthetic product benchmark; the matcher here is trained on
// the benchmark's own labels for speed (the leave-one-out transfer
// protocol of Table 2 is reproduced by bench/table2_er).

#include <cstdio>
#include <unordered_map>

#include "eval/metrics.h"
#include "eval/report.h"
#include "rpt/blocker.h"
#include "rpt/cluster.h"
#include "rpt/consolidator.h"
#include "rpt/matcher.h"
#include "rpt/pet.h"
#include "rpt/vocab_builder.h"
#include "synth/benchmarks.h"
#include "synth/universe.h"
#include "util/timer.h"

namespace {

using namespace rpt;  // example code; the library itself never does this

}  // namespace

int main() {
  std::printf("RPT-E end-to-end pipeline on a synthetic benchmark\n\n");
  ProductUniverse universe(200, 42);
  auto suite = DefaultBenchmarkSuite(0.3);
  ErBenchmark bench = GenerateErBenchmark(universe, suite[2]);
  std::printf("benchmark %s: |A|=%lld |B|=%lld, %zu labeled pairs\n",
              bench.name.c_str(),
              static_cast<long long>(bench.table_a.NumRows()),
              static_cast<long long>(bench.table_b.NumRows()),
              bench.pairs.size());

  // ---- Stage 1: blocking --------------------------------------------------
  Timer timer;
  Blocker blocker;
  BlockerStats stats;
  auto candidates =
      blocker.GenerateCandidates(bench.table_a, bench.table_b, &stats);
  std::printf("\n[blocker] %lld candidates of %lld possible pairs "
              "(reduction %.1f%%) in %.0f ms\n",
              static_cast<long long>(stats.candidates),
              static_cast<long long>(stats.total_pairs),
              100.0 * stats.reduction_ratio, timer.ElapsedMillis());

  // ---- Stage 2: matcher ---------------------------------------------------
  timer.Reset();
  MatcherConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 11;
  RptMatcher matcher(config, BuildVocabFromBenchmarks({&bench}));
  matcher.Train({&bench}, 250);
  std::printf("[matcher] trained in %.1f s\n", timer.ElapsedSeconds());

  // Few-shot PET interpretation: which attributes matter?
  std::vector<LabeledPair> fewshot(
      bench.pairs.begin(),
      bench.pairs.begin() + std::min<size_t>(24, bench.pairs.size()));
  std::printf("[matcher] PET template T1/T2 attribute importance:\n");
  for (const auto& imp : InferImportantAttributes(bench, fewshot)) {
    std::printf("   %-10s %.2f\n", imp.attribute.c_str(), imp.weight);
  }

  // Score blocked candidates. Records are indexed globally: A rows first.
  timer.Reset();
  std::vector<LabeledPair> candidate_pairs;
  candidate_pairs.reserve(candidates.size());
  for (const auto& [a, b] : candidates) {
    candidate_pairs.push_back({a, b, false});
  }
  auto scores = matcher.ScorePairs(bench, candidate_pairs);
  std::printf("[matcher] scored %zu candidates in %.1f s\n",
              candidates.size(), timer.ElapsedSeconds());

  // ---- Stage 3: clustering + conflicts ------------------------------------
  const int64_t num_records =
      bench.table_a.NumRows() + bench.table_b.NumRows();
  std::vector<MatchEdge> edges;
  for (size_t i = 0; i < candidates.size(); ++i) {
    edges.push_back({candidates[i].first,
                     bench.table_a.NumRows() + candidates[i].second,
                     scores[i]});
  }
  // Keep each record's best-scoring partner so borderline candidate edges
  // cannot snowball the transitive closure.
  edges = BestPerRecordEdges(edges);
  UnionFind clusters = BuildClusters(num_records, edges, 0.5);
  std::printf("\n[cluster] %lld clusters over %lld records\n",
              static_cast<long long>(clusters.NumClusters()),
              static_cast<long long>(num_records));

  auto conflicts = DetectConflicts(&clusters, edges, 0.5, 0.3);
  std::printf("[cluster] %zu intra-cluster conflicts detected\n",
              conflicts.size());

  // Oracle = ground-truth entity ids (simulated user, paper's active
  // learning from conflicting predictions).
  std::vector<int64_t> entity_of(static_cast<size_t>(num_records));
  for (int64_t r = 0; r < bench.table_a.NumRows(); ++r) {
    entity_of[static_cast<size_t>(r)] = bench.entity_a[static_cast<size_t>(r)];
  }
  for (int64_t r = 0; r < bench.table_b.NumRows(); ++r) {
    entity_of[static_cast<size_t>(bench.table_a.NumRows() + r)] =
        bench.entity_b[static_cast<size_t>(r)];
  }
  UnionFind resolved(num_records);
  const int64_t oracle_calls = ResolveConflictsWithOracle(
      num_records, &edges, 0.5, conflicts, /*budget=*/20,
      [&entity_of](int64_t u, int64_t v) {
        return entity_of[static_cast<size_t>(u)] ==
               entity_of[static_cast<size_t>(v)];
      },
      &resolved);
  BinaryConfusion before = PairwiseClusterConfusion(
      clusters.ClusterIds(), entity_of);
  BinaryConfusion after = PairwiseClusterConfusion(
      resolved.ClusterIds(), entity_of);
  std::printf("[cluster] oracle calls: %lld, pairwise F1 %.3f -> %.3f\n",
              static_cast<long long>(oracle_calls), before.F1(),
              after.F1());

  // ---- Stage 4: consolidation ---------------------------------------------
  // Few-shot preference: the task prefers newer renditions.
  PreferenceRule rule = InferPreferenceRule(
      {{"iphone 10", "iphone 9"}, {"iphone 12", "iphone 10"}});
  std::printf("\n[consolidate] inferred preference rule: %s\n",
              PreferenceRuleName(rule));
  Consolidator consolidator(rule);

  // Build golden records for multi-record clusters of table A's schema.
  std::unordered_map<int64_t, std::vector<Tuple>> cluster_rows;
  auto ids = resolved.ClusterIds();
  for (int64_t r = 0; r < bench.table_a.NumRows(); ++r) {
    cluster_rows[ids[static_cast<size_t>(r)]].push_back(
        bench.table_a.row(r));
  }
  int64_t printed = 0;
  for (const auto& [cluster_id, rows] : cluster_rows) {
    if (rows.size() < 2 || printed >= 3) continue;
    Tuple golden = consolidator.GoldenRecord(bench.table_a.schema(), rows);
    std::printf("[consolidate] cluster of %zu -> %s\n", rows.size(),
                FormatTuple(bench.table_a.schema(), golden).c_str());
    ++printed;
  }
  std::printf("\nPipeline complete.\n");
  return 0;
}
