// HTTP serving demo: the full RPT deployment shape on one port.
//
// Boots a RoutedServer with clean/match/extract routes behind the epoll
// HTTP front-end (net/http_server.h + net/service.h) and serves until
// SIGINT/SIGTERM. By default the routes are backed by fast synthetic
// sessions so the demo starts instantly; `--model` instead trains a tiny
// RPT-C cleaner and RPT-I extractor (a couple of seconds) so /v1/clean and
// /v1/extract run real autoregressive inference.
//
// Talk to it with curl:
//
//   ./build/examples/http_demo --port 8080 &
//   curl http://127.0.0.1:8080/healthz
//   curl -d '{"input":"hello"}' http://127.0.0.1:8080/v1/clean
//   printf '{"input":"a"}\n{"input":"b"}\n' |
//       curl --data-binary @- http://127.0.0.1:8080/v1/match   # NDJSON stream
//   curl http://127.0.0.1:8080/metrics                         # Prometheus
//
// `--port 0` (the default) binds an ephemeral port; `--port-file PATH`
// writes the bound port number to PATH once listening, which is how the CI
// release job discovers where to curl.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <semaphore.h>
#include <string>
#include <vector>

#include "net/http_server.h"
#include "net/service.h"
#include "rpt/cleaner.h"
#include "rpt/extractor.h"
#include "rpt/vocab_builder.h"
#include "serve/routed_server.h"
#include "serve/sessions.h"
#include "table/table.h"

namespace {

using rpt::CleanerSession;
using rpt::ExtractorSession;
using rpt::ModelSession;
using rpt::RouteSpec;
using rpt::RoutedServer;
using rpt::Schema;
using rpt::ServerConfig;
using rpt::SyntheticSession;
using rpt::Table;
using rpt::Value;
using rpt::net::HttpServer;
using rpt::net::HttpServerOptions;
using rpt::net::RptHttpService;

// Signal handlers can only touch async-signal-safe state; sem_post is on
// the safe list, so the handler posts and main blocks on sem_wait.
sem_t g_stop_sem;

void HandleStopSignal(int) { sem_post(&g_stop_sem); }

Table PeopleTable() {
  Table t{Schema({"name", "expertise", "city"})};
  for (int i = 0; i < 8; ++i) {
    t.AddRow({Value::String("michael jordan"),
              Value::String("machine learning"), Value::String("berkeley")});
    t.AddRow({Value::String("michael jordan"), Value::String("basketball"),
              Value::String("chicago")});
    t.AddRow({Value::String("sam madden"), Value::String("databases"),
              Value::String("cambridge")});
    t.AddRow({Value::String("geoff hinton"),
              Value::String("machine learning"), Value::String("toronto")});
  }
  return t;
}

std::vector<RouteSpec> SyntheticRoutes() {
  ServerConfig config;
  config.max_batch_size = 16;
  config.max_batch_delay = std::chrono::microseconds(1000);
  config.cache_capacity = 256;
  std::vector<RouteSpec> routes;
  for (const char* name : {"clean", "match", "extract"}) {
    routes.push_back(
        {name,
         {std::make_shared<SyntheticSession>(std::chrono::microseconds(200),
                                             std::chrono::microseconds(20))},
         config});
  }
  return routes;
}

/// Real-model routes: a tiny cleaner on /v1/clean and /v1/match (matching
/// reuses the cleaner's tuple encoder in this demo), a tiny extractor on
/// /v1/extract. Models are leaked intentionally — they must outlive the
/// sessions, which live until Shutdown at process exit.
std::vector<RouteSpec> ModelRoutes() {
  std::printf("pre-training a tiny RPT-C cleaner ...\n");
  Table table = PeopleTable();
  rpt::CleanerConfig cleaner_config;
  cleaner_config.d_model = 48;
  cleaner_config.num_layers = 2;
  cleaner_config.num_heads = 2;
  cleaner_config.dropout = 0.0f;
  cleaner_config.seed = 7;
  auto* cleaner = new rpt::RptCleaner(
      cleaner_config, rpt::BuildVocabFromTables({&table}));
  cleaner->PretrainOnTables({&table}, 400);

  std::printf("training a tiny RPT-I span extractor ...\n");
  std::vector<rpt::QaExample> qa;
  for (const auto& [name, city] :
       std::vector<std::pair<std::string, std::string>>{
           {"michael jordan", "chicago"},
           {"sam madden", "cambridge"},
           {"geoff hinton", "toronto"}}) {
    qa.push_back({"what is the city", name + " lives in " + city, city});
  }
  std::vector<std::string> texts;
  for (const auto& ex : qa) {
    texts.push_back(ex.question);
    texts.push_back(ex.paragraph);
  }
  rpt::ExtractorConfig extractor_config;
  extractor_config.d_model = 48;
  extractor_config.num_layers = 2;
  extractor_config.num_heads = 2;
  extractor_config.dropout = 0.0f;
  extractor_config.seed = 5;
  auto* extractor =
      new rpt::RptExtractor(extractor_config, rpt::BuildVocabFromTexts(texts));
  extractor->Train(qa, 200);

  ServerConfig config;
  config.max_batch_size = 8;
  config.max_batch_delay = std::chrono::microseconds(2000);
  config.cache_capacity = 64;
  std::vector<RouteSpec> routes;
  routes.push_back(
      {"clean",
       {std::make_shared<CleanerSession>(cleaner, table.schema())},
       config});
  routes.push_back(
      {"match",
       {std::make_shared<CleanerSession>(cleaner, table.schema())},
       config});
  routes.push_back(
      {"extract", {std::make_shared<ExtractorSession>(extractor)}, config});
  return routes;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  const char* port_file = nullptr;
  bool use_model = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0) {
      use_model = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--port-file PATH] [--model]\n",
                   argv[0]);
      return 2;
    }
  }

  RoutedServer routed(use_model ? ModelRoutes() : SyntheticRoutes());
  RptHttpService service(&routed);
  HttpServerOptions options;
  options.port = static_cast<uint16_t>(port);
  HttpServer http(options);
  service.Register(&http);
  const rpt::Status started = http.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "http server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving %s routes on http://127.0.0.1:%u\n",
              use_model ? "real-model" : "synthetic", http.port());
  std::printf("  curl http://127.0.0.1:%u/healthz\n", http.port());
  std::printf("  curl -d '{\"input\":\"hello\"}' "
              "http://127.0.0.1:%u/v1/clean\n", http.port());
  std::printf("  curl http://127.0.0.1:%u/metrics\n", http.port());

  if (port_file != nullptr) {
    std::FILE* f = std::fopen(port_file, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write port file '%s'\n", port_file);
      return 1;
    }
    std::fprintf(f, "%u\n", http.port());
    std::fclose(f);
  }

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
  }

  std::printf("\nshutting down ...\n");
  http.Stop();
  routed.Shutdown();
  std::fputs(routed.Stats().Render().c_str(), stdout);
  return 0;
}
