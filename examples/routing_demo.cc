// Routing demo: one serving front-end for every data-preparation task.
//
// The paper's vision is a single deployment that cleans, matches, and
// extracts. This demo trains a tiny RPT-C cleaner and a tiny RPT-I span
// extractor, wires both behind one RoutedServer — the cleaner route with a
// pool of two replica shards (each replica owns its own model instance),
// the extractor route with one — and serves a mixed workload from
// concurrent clients. Requests carry a route key ("clean" / "extract");
// within a route, the payload hash picks the shard, so repeated queries hit
// that shard's LRU cache. The run ends with the aggregated routed stats:
// per-route, per-shard, and totals in one report.
//
// Observability: `--metrics` prints the Prometheus text exposition of the
// serving metrics after the run; `--trace-out PATH` enables request
// tracing (plus the nn-stage exporter) and writes the spans as Chrome
// trace_event JSON — open it in chrome://tracing or Perfetto.
//
// `--adaptive` switches every route to the adaptive straggler-window
// policy (serve/adaptive.h): each shard's collector retunes its batching
// delay from the observed arrival rate instead of always waiting the full
// max_batch_delay. Outputs are identical either way; the stats report
// gains an "adaptive delay adjustments" row showing the controller at
// work.
//
// Build & run:  cmake -B build && cmake --build build &&
//               ./build/examples/routing_demo

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stage_exporter.h"
#include "obs/trace.h"
#include "rpt/cleaner.h"
#include "rpt/extractor.h"
#include "rpt/vocab_builder.h"
#include "serve/routed_server.h"
#include "serve/sessions.h"
#include "table/table.h"

namespace {

using rpt::CleanerSession;
using rpt::ExtractorSession;
using rpt::RoutedServer;
using rpt::RouteSpec;
using rpt::RptCleaner;
using rpt::RptExtractor;
using rpt::Schema;
using rpt::ServeResponse;
using rpt::ServerConfig;
using rpt::Table;
using rpt::Tuple;
using rpt::Value;

Table PeopleTable() {
  Table t{Schema({"name", "expertise", "city"})};
  for (int i = 0; i < 8; ++i) {
    t.AddRow({Value::String("michael jordan"),
              Value::String("machine learning"),
              Value::String("berkeley")});
    t.AddRow({Value::String("michael jordan"), Value::String("basketball"),
              Value::String("chicago")});
    t.AddRow({Value::String("michael cafarella"),
              Value::String("databases"), Value::String("ann arbor")});
    t.AddRow({Value::String("sam madden"), Value::String("databases"),
              Value::String("cambridge")});
    t.AddRow({Value::String("geoff hinton"),
              Value::String("machine learning"),
              Value::String("toronto")});
  }
  return t;
}

std::unique_ptr<RptCleaner> TrainCleaner(const Table& table, uint64_t seed) {
  rpt::CleanerConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.batch_size = 8;
  config.learning_rate = 3e-3f;
  config.seed = seed;
  auto cleaner = std::make_unique<RptCleaner>(
      config, rpt::BuildVocabFromTables({&table}));
  cleaner->PretrainOnTables({&table}, 400);
  return cleaner;
}

std::unique_ptr<RptExtractor> TrainExtractor(
    const std::vector<rpt::QaExample>& qa) {
  std::vector<std::string> texts;
  for (const auto& ex : qa) {
    texts.push_back(ex.question);
    texts.push_back(ex.paragraph);
  }
  rpt::ExtractorConfig config;
  config.d_model = 48;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 5;
  auto extractor =
      std::make_unique<RptExtractor>(config, rpt::BuildVocabFromTexts(texts));
  extractor->Train(qa, 200);
  return extractor;
}

}  // namespace

int main(int argc, char** argv) {
  bool print_metrics = false;
  bool adaptive = false;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics] [--adaptive] [--trace-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace_out != nullptr) {
    rpt::obs::GlobalTracer().set_enabled(true);
    rpt::obs::InstallStageTimingExporter();
  }

  std::printf("RPT routing demo: one front-end, every data-prep task\n\n");
  Table table = PeopleTable();

  // Two cleaner replicas: each shard's collector runs inference on its own
  // model instance (inference toggles train/eval state, so replicas must
  // not share a model). Same data + same seed keeps them interchangeable.
  std::printf("pre-training two RPT-C cleaner replicas ...\n");
  auto cleaner_a = TrainCleaner(table, /*seed=*/7);
  auto cleaner_b = TrainCleaner(table, /*seed=*/7);

  std::printf("training the RPT-I span extractor ...\n\n");
  std::vector<rpt::QaExample> qa;
  const std::vector<std::pair<std::string, std::string>> cities = {
      {"michael jordan", "chicago"},
      {"sam madden", "cambridge"},
      {"geoff hinton", "toronto"},
      {"michael cafarella", "ann arbor"},
  };
  for (const auto& [name, city] : cities) {
    qa.push_back({"what is the city", name + " lives in " + city, city});
  }
  auto extractor = TrainExtractor(qa);

  ServerConfig clean_config;
  clean_config.max_batch_size = 8;
  clean_config.max_batch_delay = std::chrono::microseconds(2000);
  clean_config.cache_capacity = 64;
  if (adaptive) {
    clean_config.batch_policy = rpt::BatchPolicy::kAdaptive;
    clean_config.min_batch_delay = std::chrono::microseconds(100);
    clean_config.target_queue_wait_ms = 5.0;
    std::printf("batching policy: adaptive (window 100..2000us, "
                "5ms queue-wait budget)\n\n");
  }
  ServerConfig extract_config = clean_config;

  std::vector<RouteSpec> routes;
  routes.push_back(
      {"clean",
       {std::make_shared<CleanerSession>(cleaner_a.get(), table.schema()),
        std::make_shared<CleanerSession>(cleaner_b.get(), table.schema())},
       clean_config});
  routes.push_back(
      {"extract",
       {std::make_shared<ExtractorSession>(extractor.get())},
       extract_config});
  RoutedServer server(std::move(routes));

  // Concurrent users mix cleaning and extraction through the one
  // front-end; overlapping queries ride the per-shard caches.
  const std::vector<std::pair<std::string, std::string>> people = {
      {"michael jordan", "machine learning"},
      {"michael jordan", "basketball"},
      {"sam madden", "databases"},
      {"geoff hinton", "machine learning"},
  };
  std::mutex print_mu;
  std::vector<std::thread> clients;
  for (int user = 0; user < 4; ++user) {
    clients.emplace_back([&, user] {
      for (size_t q = 0; q < people.size(); ++q) {
        const auto& [name, expertise] = people[(user + q) % people.size()];
        Tuple query = {Value::String(name), Value::String(expertise),
                       Value::Null()};
        ServeResponse cell = server.SubmitWait(
            "clean", CleanerSession::FormatCellQuery(query, 2));
        ServeResponse span = server.SubmitWait(
            "extract", ExtractorSession::FormatQaQuery(
                           "what is the city",
                           name + " lives in " +
                               (cell.status.ok() ? cell.output : "?")));
        std::lock_guard<std::mutex> lock(print_mu);
        if (cell.status.ok()) {
          std::printf("user %d: clean(%s, %s, [M]) -> %-12s %s\n", user,
                      name.c_str(), expertise.c_str(), cell.output.c_str(),
                      cell.cache_hit ? "[cache]" : "");
        } else {
          std::printf("user %d: clean failed: %s\n", user,
                      cell.status.ToString().c_str());
        }
        if (span.status.ok()) {
          std::printf("user %d: extract(city of %s) -> %s\n", user,
                      name.c_str(), span.output.c_str());
        } else {
          std::printf("user %d: extract failed: %s\n", user,
                      span.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  // A route key the deployment does not serve fails fast with kNotFound.
  ServeResponse unknown = server.SubmitWait("translate", "bonjour");
  std::printf("\nunknown route: %s\n\n", unknown.status.ToString().c_str());

  server.Shutdown();
  server.PrintStats();

  if (print_metrics) {
    std::printf("\n==== metrics (Prometheus text exposition) ====\n%s",
                server.MetricsText().c_str());
  }
  if (trace_out != nullptr) {
    const std::string json = server.DumpTrace();
    std::FILE* f = std::fopen(trace_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open trace output '%s'\n", trace_out);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                trace_out);
  }
  return 0;
}
