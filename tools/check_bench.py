#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against the committed
baseline and fail CI when a gated metric regresses beyond tolerance.

Both files are the flat ``{"metric_name": number, ...}`` objects that
``micro_kernels --json-out`` and ``serve_throughput --json-out`` write
(``BENCH_kernels.json`` nests per-size GEMM rows, which are flattened to
``gemm_nn_square_n<N>_<field>``).

Which metrics gate, and in which direction, is inferred from the name:

* higher-is-better (fail when current < baseline * (1 - tolerance), default
  15%): any name containing an ``rps``, ``gflops``, ``speedup``, or
  ``agreement`` token, plus ``*_hit_rate``.
* lower-is-better (fail when current > baseline * factor, default 1.5x):
  any name containing an ``ms``, ``p50``/``p95``/``p99``, or ``mb`` token,
  plus ``*_abs_diff``.
* ``failures`` must be 0 in the current run, full stop.
* everything else (counts like ``*_items``, ``*_hits``, flags like
  ``built_with_avx2``) is reported but never gates — those move with
  scheduling noise, not performance.

A metric present in only one file is reported, not failed: baselines are
allowed to trail the bench by one PR in either direction.

Usage:
  tools/check_bench.py --baseline BENCH_serve.json \
      --current artifacts/BENCH_serve.json [--report out.txt] \
      [--drop-tolerance 0.15] [--growth-factor 1.5]
"""

import argparse
import json
import sys

HIGHER_BETTER_TOKENS = {"rps", "gflops", "speedup", "agreement"}
LOWER_BETTER_TOKENS = {"ms", "p50", "p95", "p99", "mb"}


def flatten(obj, prefix=""):
    """Flattens the bench JSON shapes into {name: float}.

    Dicts nest with ``_``; lists of row-objects (the GEMM table) key each
    row by its ``n`` field when present, else by index. Non-numeric leaves
    (e.g. the backend name string) are dropped.
    """
    flat = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = f"{prefix}_{key}" if prefix else key
            flat.update(flatten(value, name))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            tag = f"n{value['n']}" if isinstance(value, dict) and "n" in value \
                else str(i)
            flat.update(flatten(value, f"{prefix}_{tag}"))
    elif isinstance(obj, bool):
        pass  # flags never gate; keeping them as 0/1 would only confuse
    elif isinstance(obj, (int, float)):
        flat[prefix] = float(obj)
    return flat


def direction(name):
    if name == "failures":
        return "failures"
    # the "n" of a flattened GEMM row is a size label, not a measurement
    if name.endswith("_n"):
        return "info"
    tokens = set(name.split("_"))
    if tokens & HIGHER_BETTER_TOKENS or name.endswith("_hit_rate"):
        return "higher"
    if tokens & LOWER_BETTER_TOKENS or name.endswith("_abs_diff"):
        return "lower"
    return "info"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--report", help="also write the diff table here")
    parser.add_argument("--drop-tolerance", type=float, default=0.15,
                        help="allowed fractional drop for higher-is-better "
                             "metrics (default 0.15)")
    parser.add_argument("--growth-factor", type=float, default=1.5,
                        help="allowed growth factor for lower-is-better "
                             "metrics (default 1.5)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = flatten(json.load(f))
    with open(args.current) as f:
        current = flatten(json.load(f))

    lines = [f"bench diff: {args.current} vs baseline {args.baseline}",
             f"{'metric':<44} {'baseline':>12} {'current':>12} "
             f"{'ratio':>7}  verdict"]
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            side = "baseline" if cur is None else "current"
            lines.append(f"{name:<44} {'-' if base is None else f'{base:.6g}':>12} "
                         f"{'-' if cur is None else f'{cur:.6g}':>12} "
                         f"{'':>7}  only in {side}")
            continue
        ratio = cur / base if base != 0 else float("inf") if cur else 1.0
        kind = direction(name)
        verdict = "info"
        if kind == "failures":
            verdict = "ok" if cur == 0 else "FAIL"
            if cur != 0:
                regressions.append(f"{name}: current run reports "
                                   f"{cur:.0f} failure(s)")
        elif kind == "higher":
            if cur < base * (1.0 - args.drop_tolerance):
                verdict = "FAIL"
                regressions.append(
                    f"{name}: {cur:.6g} is a "
                    f"{(1.0 - ratio) * 100.0:.1f}% drop from {base:.6g} "
                    f"(tolerance {args.drop_tolerance * 100:.0f}%)")
            else:
                verdict = "ok"
        elif kind == "lower":
            if cur > base * args.growth_factor:
                verdict = "FAIL"
                regressions.append(
                    f"{name}: {cur:.6g} grew {ratio:.2f}x over {base:.6g} "
                    f"(limit {args.growth_factor:.2f}x)")
            else:
                verdict = "ok"
        lines.append(f"{name:<44} {base:>12.6g} {cur:>12.6g} "
                     f"{ratio:>7.3f}  {verdict}")

    report = "\n".join(lines) + "\n"
    if regressions:
        report += "\nREGRESSIONS:\n" + "\n".join(
            f"  - {r}" for r in regressions) + "\n"
    else:
        report += "\nno regressions beyond tolerance\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
